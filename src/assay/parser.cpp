#include "assay/parser.hpp"

#include <fstream>
#include <map>
#include <sstream>

#include "util/error.hpp"
#include "util/strings.hpp"

namespace fsyn::assay {

namespace {

class Parser {
 public:
  explicit Parser(std::string_view text) : text_(text) {}

  SequencingGraph run() {
    SequencingGraph graph;
    bool named = false;
    int line_number = 0;
    std::istringstream stream{std::string(text_)};
    std::string raw;
    while (std::getline(stream, raw)) {
      ++line_number;
      line_ = line_number;
      std::string_view line = raw;
      if (const auto hash = line.find('#'); hash != std::string_view::npos) {
        line = line.substr(0, hash);
      }
      const auto tokens = split_whitespace(line);
      if (tokens.empty()) continue;
      const std::string& keyword = tokens[0];
      if (keyword == "assay") {
        fail_unless(tokens.size() == 2, "expected: assay <name>");
        fail_unless(!named, "duplicate 'assay' line");
        graph = SequencingGraph(tokens[1]);
        named = true;
      } else if (keyword == "input") {
        fail_unless(tokens.size() == 2, "expected: input <name>");
        Operation op;
        op.kind = OpKind::kInput;
        op.name = tokens[1];
        add(graph, std::move(op));
      } else if (keyword == "mix") {
        parse_mix(graph, tokens);
      } else if (keyword == "detect") {
        parse_detect(graph, tokens);
      } else if (keyword == "output") {
        fail_unless(tokens.size() == 4 && tokens[2] == "from",
                    "expected: output <name> from <parent>");
        Operation op;
        op.kind = OpKind::kOutput;
        op.name = tokens[1];
        op.parents.push_back(lookup(tokens[3]));
        add(graph, std::move(op));
      } else {
        fail("unknown keyword '" + keyword + "'");
      }
    }
    graph.validate();
    return graph;
  }

 private:
  [[noreturn]] void fail(const std::string& message) const {
    throw Error("assay parse error at line " + std::to_string(line_) + ": " + message);
  }
  void fail_unless(bool ok, const std::string& message) const {
    if (!ok) fail(message);
  }

  OpId lookup(const std::string& name) const {
    const auto it = by_name_.find(name);
    fail_unless(it != by_name_.end(), "unknown operation '" + name + "'");
    return it->second;
  }

  void add(SequencingGraph& graph, Operation op) {
    fail_unless(!by_name_.contains(op.name), "duplicate operation '" + op.name + "'");
    const std::string name = op.name;
    try {
      by_name_[name] = graph.add_operation(std::move(op));
    } catch (const Error& e) {
      fail(e.what());
    }
  }

  void parse_mix(SequencingGraph& graph, const std::vector<std::string>& tokens) {
    // mix <name> volume <v> duration <d> from <parent>[:<parts>] ...
    fail_unless(tokens.size() >= 8 && tokens[2] == "volume" && tokens[4] == "duration" &&
                    tokens[6] == "from",
                "expected: mix <name> volume <v> duration <d> from <parent>[:parts] ...");
    Operation op;
    op.kind = OpKind::kMix;
    op.name = tokens[1];
    op.volume = parse_number(tokens[3]);
    op.duration = parse_number(tokens[5]);
    bool any_ratio = false;
    for (std::size_t i = 7; i < tokens.size(); ++i) {
      const auto colon = tokens[i].find(':');
      if (colon == std::string::npos) {
        op.parents.push_back(lookup(tokens[i]));
        op.ratio.push_back(1);
      } else {
        op.parents.push_back(lookup(tokens[i].substr(0, colon)));
        op.ratio.push_back(parse_number(tokens[i].substr(colon + 1)));
        any_ratio = true;
      }
    }
    if (!any_ratio) op.ratio.clear();  // equal parts, keep the graph minimal
    add(graph, std::move(op));
  }

  void parse_detect(SequencingGraph& graph, const std::vector<std::string>& tokens) {
    // detect <name> duration <d> from <parent>
    fail_unless(tokens.size() == 6 && tokens[2] == "duration" && tokens[4] == "from",
                "expected: detect <name> duration <d> from <parent>");
    Operation op;
    op.kind = OpKind::kDetect;
    op.name = tokens[1];
    op.duration = parse_number(tokens[3]);
    op.volume = 4;  // detection chamber: smallest dynamic device
    op.parents.push_back(lookup(tokens[5]));
    add(graph, std::move(op));
  }

  int parse_number(const std::string& token) const {
    try {
      return parse_int(token);
    } catch (const Error& e) {
      fail(e.what());
    }
  }

  std::string_view text_;
  int line_ = 0;
  std::map<std::string, OpId> by_name_;
};

}  // namespace

SequencingGraph parse_assay(std::string_view text) { return Parser(text).run(); }

SequencingGraph load_assay_file(const std::string& path) {
  std::ifstream file(path);
  check_input(file.good(), "cannot open assay file '" + path + "'");
  std::ostringstream content;
  content << file.rdbuf();
  return parse_assay(content.str());
}

std::string to_assay_text(const SequencingGraph& graph) {
  std::ostringstream os;
  os << "assay " << graph.name() << '\n';
  for (const Operation& op : graph.operations()) {
    switch (op.kind) {
      case OpKind::kInput:
        os << "input  " << op.name << '\n';
        break;
      case OpKind::kMix: {
        os << "mix    " << op.name << " volume " << op.volume << " duration " << op.duration
           << " from";
        for (std::size_t i = 0; i < op.parents.size(); ++i) {
          os << ' ' << graph.op(op.parents[i]).name;
          if (!op.ratio.empty()) os << ':' << op.ratio[i];
        }
        os << '\n';
        break;
      }
      case OpKind::kDetect:
        os << "detect " << op.name << " duration " << op.duration << " from "
           << graph.op(op.parents[0]).name << '\n';
        break;
      case OpKind::kOutput:
        os << "output " << op.name << " from " << graph.op(op.parents[0]).name << '\n';
        break;
    }
  }
  return os.str();
}

}  // namespace fsyn::assay
