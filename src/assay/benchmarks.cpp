#include "assay/benchmarks.hpp"

#include <algorithm>
#include <map>

#include "util/error.hpp"

namespace fsyn::assay {

namespace {

/// Checks a finished benchmark against the paper's Table-1 head counts.
void assert_counts(const SequencingGraph& g, int total_ops, int mixing_ops,
                   const std::map<int, int>& volume_histogram) {
  g.validate();
  require(g.size() == total_ops, "benchmark op count drifted from Table 1");
  require(g.mixing_count() == mixing_ops, "benchmark mixing count drifted from Table 1");
  std::map<int, int> histogram;
  for (const Operation& op : g.operations()) {
    if (op.kind == OpKind::kMix) ++histogram[op.volume];
  }
  require(histogram == volume_histogram, "benchmark volume multiset drifted from Table 1");
}

/// Deterministic duration cycle for benchmarks without published timings.
int cycle_duration(int index) {
  static constexpr int kCycle[] = {6, 5, 7, 4, 8};
  return kCycle[index % 5];
}

Operation make_input(const std::string& name) {
  Operation op;
  op.kind = OpKind::kInput;
  op.name = name;
  return op;
}

Operation make_mix(const std::string& name, std::vector<OpId> parents, int volume,
                   int duration) {
  Operation op;
  op.kind = OpKind::kMix;
  op.name = name;
  op.parents = std::move(parents);
  op.volume = volume;
  op.duration = duration;
  return op;
}

Operation make_detect(const std::string& name, OpId parent, int duration = 4) {
  Operation op;
  op.kind = OpKind::kDetect;
  op.name = name;
  op.parents = {parent};
  op.duration = duration;
  op.volume = 4;  // detection chamber: smallest dynamic device, no pumping
  return op;
}

}  // namespace

SequencingGraph make_pcr() {
  SequencingGraph g("pcr");
  // Eight reagents feed the binary mixing tree of Fig. 9:
  //   o5 <- o1, o2;  o6 <- o3, o4;  o7 <- o5, o6.
  // Durations chosen so ASAP scheduling with 3 tu transport reproduces the
  // Gantt chart exactly (o3/o4 end at 3, o6 runs 6..12, o2 ends at 12,
  // o1 at 15, o5 runs 18..22, o7 runs 25..29).
  std::vector<OpId> in;
  for (int i = 1; i <= 8; ++i) in.push_back(g.add_operation(make_input("i" + std::to_string(i))));
  const OpId o1 = g.add_operation(make_mix("o1", {in[0], in[1]}, 8, 15));
  const OpId o2 = g.add_operation(make_mix("o2", {in[2], in[3]}, 8, 12));
  const OpId o3 = g.add_operation(make_mix("o3", {in[4], in[5]}, 8, 3));
  const OpId o4 = g.add_operation(make_mix("o4", {in[6], in[7]}, 8, 3));
  const OpId o5 = g.add_operation(make_mix("o5", {o1, o2}, 10, 4));
  const OpId o6 = g.add_operation(make_mix("o6", {o3, o4}, 10, 6));
  g.add_operation(make_mix("o7", {o5, o6}, 4, 4));
  assert_counts(g, 15, 7, {{4, 1}, {8, 4}, {10, 2}});
  return g;
}

SequencingGraph make_mixing_tree() {
  SequencingGraph g("mixing_tree");
  // A 19-leaf mixing tree: repeatedly mix the two oldest unconsumed
  // products, which yields a left-leaning reduction tree of 18 mixes.
  // Volumes are drawn from the Table-1 multiset 2x4, 4x6, 5x8, 7x10,
  // ordered so that late (high-fan-in) mixes tend to be larger.
  static constexpr int kVolumes[18] = {6, 8, 6, 8, 6, 8, 6, 8, 8,
                                       10, 10, 10, 10, 10, 10, 10, 4, 4};
  std::vector<OpId> pending;
  for (int i = 1; i <= 19; ++i) {
    pending.push_back(g.add_operation(make_input("r" + std::to_string(i))));
  }
  int mix_index = 0;
  while (pending.size() > 1) {
    const OpId a = pending[0];
    const OpId b = pending[1];
    pending.erase(pending.begin(), pending.begin() + 2);
    const OpId m = g.add_operation(make_mix("m" + std::to_string(mix_index + 1), {a, b},
                                            kVolumes[mix_index], cycle_duration(mix_index)));
    pending.push_back(m);
    ++mix_index;
  }
  assert_counts(g, 37, 18, {{4, 2}, {6, 4}, {8, 5}, {10, 7}});
  return g;
}

SequencingGraph make_interpolating_dilution() {
  SequencingGraph g("interpolating_dilution");
  // Interpolating mixing architecture after Ren et al. [11]: 16 seed mixes
  // of fresh sample/buffer pairs, then a reduction cascade (8 + 4 + 2 + 1)
  // producing coarse concentrations, plus 4 interpolation mixes between
  // neighbouring cascade products whose concentrations are read out.
  static constexpr int kVolumes[35] = {
      // 16 seed mixes
      6, 6, 6, 6, 6, 6, 6, 6, 8, 8, 8, 8, 8, 8, 8, 8,
      // 8 + 4 + 2 + 1 cascade
      10, 10, 10, 10, 10, 10, 10, 10, 10, 10, 10, 10, 6, 4, 4,
      // 4 interpolation mixes
      8, 4, 4, 4};
  int mix_index = 0;
  auto next_mix = [&](std::vector<OpId> parents) {
    const int volume = kVolumes[mix_index];
    const OpId id = g.add_operation(make_mix("d" + std::to_string(mix_index + 1),
                                             std::move(parents), volume,
                                             cycle_duration(mix_index)));
    ++mix_index;
    return id;
  };

  std::vector<OpId> level;
  for (int i = 0; i < 16; ++i) {
    const OpId s = g.add_operation(make_input("s" + std::to_string(i + 1)));
    const OpId b = g.add_operation(make_input("b" + std::to_string(i + 1)));
    level.push_back(next_mix({s, b}));
  }
  std::vector<OpId> second_level;
  while (level.size() > 1) {
    std::vector<OpId> next;
    for (std::size_t i = 0; i + 1 < level.size(); i += 2) {
      next.push_back(next_mix({level[i], level[i + 1]}));
    }
    if (second_level.empty()) second_level = next;
    level = std::move(next);
  }
  // Interpolate between neighbouring second-level concentrations and detect.
  std::vector<OpId> interpolated;
  for (int i = 0; i < 4; ++i) {
    interpolated.push_back(next_mix({second_level[static_cast<std::size_t>(i)],
                                     second_level[static_cast<std::size_t>(i) + 1]}));
  }
  for (int i = 0; i < 4; ++i) {
    g.add_operation(make_detect("read" + std::to_string(i + 1),
                                interpolated[static_cast<std::size_t>(i)]));
  }
  assert_counts(g, 71, 35, {{4, 5}, {6, 9}, {8, 9}, {10, 12}});
  return g;
}

SequencingGraph make_exponential_dilution() {
  SequencingGraph g("exponential_dilution");
  // Serial exponential dilution [12]: five chains; every step mixes the
  // previous product 1:1 with fresh buffer, halving the concentration.
  // Four chain ends are detected.  Chain lengths 10+10+9+9+9 = 47 mixes.
  static constexpr int kChainLength[5] = {10, 10, 9, 9, 9};
  static constexpr int kVolumes[47] = {
      // chain 1 (10)
      10, 8, 6, 6, 8, 10, 6, 8, 10, 4,
      // chain 2 (10)
      10, 8, 6, 6, 8, 10, 6, 8, 10, 4,
      // chain 3 (9)
      10, 8, 6, 6, 8, 10, 6, 8, 4,
      // chain 4 (9)
      10, 8, 6, 6, 8, 10, 6, 8, 4,
      // chain 5 (9)
      10, 6, 6, 6, 8, 10, 4, 4, 6};
  int mix_index = 0;
  for (int chain = 0; chain < 5; ++chain) {
    OpId current =
        g.add_operation(make_input("sample" + std::to_string(chain + 1)));
    for (int step = 0; step < kChainLength[chain]; ++step) {
      const OpId buffer = g.add_operation(make_input(
          "buf" + std::to_string(chain + 1) + "_" + std::to_string(step + 1)));
      Operation mix = make_mix("e" + std::to_string(mix_index + 1), {current, buffer},
                               kVolumes[mix_index], cycle_duration(mix_index));
      mix.ratio = {1, 1};  // exact 1:1 serial dilution
      current = g.add_operation(std::move(mix));
      ++mix_index;
    }
    if (chain < 4) {
      g.add_operation(make_detect("read" + std::to_string(chain + 1), current));
    }
  }
  assert_counts(g, 103, 47, {{4, 6}, {6, 16}, {8, 13}, {10, 12}});
  return g;
}

SequencingGraph make_protein_assay() {
  SequencingGraph g("protein");
  // Binary dilution tree of depth 3: the sample is diluted 1:1 with buffer,
  // and every dilution product feeds two further dilutions, yielding the
  // 8 concentrations of the classic protein benchmark.  Each leaf dilution
  // is then mixed 1:1 with Bradford reagent and read optically.
  const OpId sample = g.add_operation(make_input("sample"));
  int buffers = 0, mix_index = 0;
  auto dilute = [&](OpId parent, int volume) {
    const OpId buffer = g.add_operation(make_input("buf" + std::to_string(++buffers)));
    ++mix_index;
    Operation mix = make_mix("dlt" + std::to_string(mix_index), {parent, buffer}, volume,
                             cycle_duration(mix_index));
    mix.ratio = {1, 1};
    return g.add_operation(std::move(mix));
  };

  std::vector<OpId> level{dilute(sample, 10)};
  for (int depth = 0; depth < 2; ++depth) {
    std::vector<OpId> next;
    for (const OpId node : level) {
      next.push_back(dilute(node, depth == 0 ? 8 : 6));
      next.push_back(dilute(node, depth == 0 ? 8 : 6));
    }
    level = std::move(next);
  }
  // 8 leaf dilutions of the last level... depth covers 1 + 2 + 4 = 7 mixes;
  // mix each of the 4 level-2 products with reagent twice (split readout).
  int reagents = 0;
  for (const OpId node : level) {
    for (int split = 0; split < 2; ++split) {
      const OpId reagent = g.add_operation(make_input("rgt" + std::to_string(++reagents)));
      ++mix_index;
      Operation mix = make_mix("assay" + std::to_string(mix_index - 7), {node, reagent}, 4,
                               cycle_duration(mix_index));
      const OpId stained = g.add_operation(std::move(mix));
      g.add_operation(make_detect("od" + std::to_string(reagents), stained));
    }
  }
  g.validate();
  require(g.size() == 39 && g.mixing_count() == 15, "protein benchmark drifted");
  return g;
}

SequencingGraph make_invitro() {
  SequencingGraph g("invitro");
  // 3 physiological samples x 3 enzymatic assays; every pair is mixed and
  // its product detected (Su & Chakrabarty's in-vitro benchmark family).
  std::vector<OpId> samples, reagents;
  for (int s = 1; s <= 3; ++s) {
    samples.push_back(g.add_operation(make_input("S" + std::to_string(s))));
  }
  for (int a = 1; a <= 3; ++a) {
    reagents.push_back(g.add_operation(make_input("R" + std::to_string(a))));
  }
  static constexpr int kVolumes[9] = {8, 6, 8, 6, 8, 6, 8, 6, 4};
  int index = 0;
  for (std::size_t s = 0; s < samples.size(); ++s) {
    for (std::size_t a = 0; a < reagents.size(); ++a) {
      const std::string tag = std::to_string(s + 1) + std::to_string(a + 1);
      const OpId mixed = g.add_operation(make_mix("m" + tag, {samples[s], reagents[a]},
                                                  kVolumes[index], cycle_duration(index)));
      ++index;
      g.add_operation(make_detect("d" + tag, mixed));
    }
  }
  g.validate();
  require(g.size() == 24 && g.mixing_count() == 9, "invitro benchmark drifted");
  return g;
}

std::vector<std::string> benchmark_names() {
  return {"pcr", "mixing_tree", "interpolating_dilution", "exponential_dilution"};
}

std::vector<std::string> extended_benchmark_names() {
  auto names = benchmark_names();
  names.push_back("protein");
  names.push_back("invitro");
  return names;
}

SequencingGraph make_benchmark(const std::string& name) {
  if (name == "pcr") return make_pcr();
  if (name == "mixing_tree") return make_mixing_tree();
  if (name == "interpolating_dilution") return make_interpolating_dilution();
  if (name == "exponential_dilution") return make_exponential_dilution();
  if (name == "protein") return make_protein_assay();
  if (name == "invitro") return make_invitro();
  throw Error("unknown benchmark '" + name + "'");
}

}  // namespace fsyn::assay
