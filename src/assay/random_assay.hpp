// Random bioassay generator for property/fuzz testing and scaling studies.
//
// Generates structurally valid sequencing graphs: a DAG of mixing
// operations over fresh inputs and earlier products, with optional detects,
// volumes from the paper's set {4, 6, 8, 10} and randomized ratios.  Every
// graph passes SequencingGraph::validate() by construction.
#pragma once

#include "assay/sequencing_graph.hpp"
#include "util/rng.hpp"

namespace fsyn::assay {

struct RandomAssayOptions {
  int mixing_ops = 10;
  /// Probability that a mix consumes an earlier product (vs a fresh input)
  /// for each of its two parents; higher = deeper graphs.
  double reuse_probability = 0.5;
  /// Probability of a detect op on an otherwise-terminal product.
  double detect_probability = 0.2;
  /// Probability that a mix uses a non-equal ratio (1:3 or 3:1).
  double skewed_ratio_probability = 0.25;
};

/// Generates a random assay; deterministic in (rng state, options).
SequencingGraph make_random_assay(Rng& rng, const RandomAssayOptions& options = {});

}  // namespace fsyn::assay
