// Bioassay operations.
//
// A bioassay is a DAG of operations (the paper's "sequencing graph", input
// #1 of the problem formulation).  Mixing operations carry a volume in cells
// of the valve grid (4, 6, 8 or 10 in the paper's benchmarks) and a mixing
// ratio over their parents; transport edges are implied by the parent lists.
#pragma once

#include <string>
#include <vector>

namespace fsyn::assay {

/// Index of an operation inside its SequencingGraph.
struct OpId {
  int index = -1;
  friend auto operator<=>(const OpId&, const OpId&) = default;
  bool valid() const { return index >= 0; }
};

enum class OpKind {
  kInput,   ///< fluid dispensed from a chip port
  kMix,     ///< peristaltic mixing of the parents' products
  kDetect,  ///< optical detection; occupies a device, no peristalsis
  kOutput   ///< product routed to a waste/collection port
};

const char* to_string(OpKind kind);

struct Operation {
  OpId id;
  std::string name;
  OpKind kind = OpKind::kMix;
  /// Parents whose products this operation consumes (empty for inputs).
  std::vector<OpId> parents;
  /// For kMix: parts of each parent in the mixture, aligned with `parents`
  /// (e.g. {1, 3} for a 1:3 mix).  Empty means equal parts.
  std::vector<int> ratio;
  /// Device volume in grid cells (4/6/8/10 for the paper's mixers).
  /// Inputs and outputs use 0 (they occupy no device).
  int volume = 0;
  /// Execution time in time units, excluding transport.
  int duration = 0;
};

}  // namespace fsyn::assay
