// The four test cases of the paper's evaluation (Section 4), reconstructed
// from laboratory protocols [11][12] and the data in Table 1.
//
// The paper gives, per case, the total and mixing operation counts and — via
// the #m4-6-8-10 column — the exact multiset of mixing volumes.  The DAG
// structures follow the cited protocols: a binary mixing tree for PCR
// (matching Fig. 9), a larger mixing tree, an interpolating dilution network
// (Ren et al.) and serial exponential-dilution chains.  Durations are not
// printed in the paper; the PCR durations are chosen so that an ASAP
// schedule with 3 tu transport delay reproduces Fig. 9 exactly, the others
// use a fixed deterministic cycle (see DESIGN.md §3.2).
#pragma once

#include <string>
#include <vector>

#include "assay/sequencing_graph.hpp"

namespace fsyn::assay {

/// Transport delay used throughout the paper's experiments (Fig. 9).
inline constexpr int kTransportDelay = 3;

/// Polymerase chain reaction mixing stage: 15 ops, 7 mixes (Fig. 9).
SequencingGraph make_pcr();

/// General sample-preparation mixing tree: 37 ops, 18 mixes.
SequencingGraph make_mixing_tree();

/// Interpolating dilution network [11]: 71 ops, 35 mixes.
SequencingGraph make_interpolating_dilution();

/// Exponential dilution chains [12]: 103 ops, 47 mixes.
SequencingGraph make_exponential_dilution();

/// Names accepted by make_benchmark, in the paper's Table-1 order.
std::vector<std::string> benchmark_names();

// ---- additional laboratory protocols beyond the paper's four ----

/// Colorimetric protein assay (after Su & Chakrabarty's classic DMFB
/// benchmark): a binary dilution tree of the sample, each dilution mixed
/// with Bradford reagent and read optically.  39 ops, 15 mixes.
SequencingGraph make_protein_assay();

/// In-vitro diagnostics: 3 physiological samples x 3 enzymatic assays,
/// every pair mixed and detected.  24 ops, 9 mixes.
SequencingGraph make_invitro();

/// The paper's four benchmarks plus the additional protocols.
std::vector<std::string> extended_benchmark_names();

/// Builds a benchmark by name (any of extended_benchmark_names());
/// throws fsyn::Error for unknown names.
SequencingGraph make_benchmark(const std::string& name);

}  // namespace fsyn::assay
