// Ablation: value of in situ on-chip storages (the c5 overlap relaxation,
// paper Section 3.3 / Eq. 12).
//
// Disabling the relaxation forces every storage region to be spatially
// disjoint from its parent devices, which needs more chip area; the paper's
// argument is that in situ storages "can share valves with devices as well
// as routing paths and thus much area can be saved".
#include <iostream>

#include "assay/benchmarks.hpp"
#include "sched/list_scheduler.hpp"
#include "synth/synthesis.hpp"
#include "util/strings.hpp"
#include "util/table.hpp"

using namespace fsyn;

int main() {
  std::cout << "== Ablation: in situ storage overlap (Eq. 12 / c5) ==\n\n";
  TextTable table;
  table.set_header({"case", "overlap", "chip", "vs_1max", "vs_2max", "#v", "T(s)"});
  table.set_alignment({Align::kLeft, Align::kLeft, Align::kLeft});

  for (const auto& name : assay::benchmark_names()) {
    const auto g = assay::make_benchmark(name);
    const auto schedule = sched::schedule_with_policy(g, sched::make_policy(g, 1));
    for (const bool allow : {true, false}) {
      synth::SynthesisOptions options;
      options.allow_storage_overlap = allow;
      try {
        const auto r = synth::synthesize(g, schedule, options);
        table.add_row({name, allow ? "on (paper)" : "off",
                       std::to_string(r.chip_width) + "x" + std::to_string(r.chip_height),
                       std::to_string(r.vs1_max) + "(" + std::to_string(r.vs1_pump) + ")",
                       std::to_string(r.vs2_max) + "(" + std::to_string(r.vs2_pump) + ")",
                       std::to_string(r.valve_count), format_fixed(r.runtime_seconds, 1)});
      } catch (const Error&) {
        table.add_row({name, allow ? "on (paper)" : "off", "infeasible", "-", "-", "-", "-"});
      }
    }
    table.add_separator();
  }
  std::cout << table.to_string();
  std::cout << "\nwithout the overlap permission the smallest feasible matrix grows\n"
               "(or synthesis fails outright), confirming the area saving claimed in\n"
               "Section 3.3.\n";
  return 0;
}
