// Ablation: exact ILP mapping (the paper's Gurobi path, here solved by the
// in-tree branch & bound) versus the heuristic mapper, on instances small
// enough for the exact solver to close.
//
// The heuristic must never beat a proven ILP optimum; matching objectives
// validate that the cheap mapper is a faithful stand-in on the large cases.
#include <iostream>

#include "assay/parser.hpp"
#include "sched/list_scheduler.hpp"
#include "synth/heuristic_mapper.hpp"
#include "synth/ilp_mapper.hpp"
#include "util/error.hpp"
#include "util/table.hpp"

using namespace fsyn;

namespace {

struct Instance {
  const char* label;
  const char* text;
  int grid;
};

constexpr Instance kInstances[] = {
    {"single mix", R"(
assay single
input i1
input i2
mix a volume 8 duration 6 from i1 i2
)", 6},
    {"two concurrent", R"(
assay concurrent
input i1
input i2
input i3
input i4
mix a volume 8 duration 6 from i1 i2
mix b volume 8 duration 6 from i3 i4
)", 7},
    {"chain of two", R"(
assay chain
input i1
input i2
input i3
mix a volume 8 duration 6 from i1 i2
mix b volume 8 duration 6 from a i3
)", 7},
    {"fork-join", R"(
assay forkjoin
input i1
input i2
input i3
input i4
mix a volume 6 duration 5 from i1 i2
mix b volume 6 duration 8 from i3 i4
mix c volume 8 duration 6 from a b
)", 8},
};

}  // namespace

int main() {
  std::cout << "== Ablation: exact ILP vs heuristic dynamic-device mapping ==\n\n";
  TextTable table;
  table.set_header({"instance", "grid", "heuristic w", "ILP w", "ILP status", "B&B nodes"});
  table.set_alignment({Align::kLeft, Align::kLeft});

  for (const Instance& instance : kInstances) {
    const auto g = assay::parse_assay(instance.text);
    const auto schedule = sched::schedule_asap(g);
    auto problem = synth::MappingProblem::build(
        g, schedule, arch::Architecture(instance.grid, instance.grid));

    const auto heuristic = synth::map_heuristic(problem);
    require(heuristic.has_value(), "heuristic failed on a tiny instance");

    synth::IlpMapperOptions options;
    options.warm_start = heuristic->placement;
    options.time_limit_seconds = 120.0;
    const auto exact = synth::map_ilp(problem, options);
    require(exact.has_value(), "ILP failed on a tiny instance");
    require(exact->max_pump_load <= heuristic->max_pump_load,
            "the exact solver must never lose to the heuristic");

    const char* status = exact->status == ilp::MilpStatus::kOptimal ? "optimal" : "feasible";
    table.add_row({instance.label,
                   std::to_string(instance.grid) + "x" + std::to_string(instance.grid),
                   std::to_string(heuristic->max_pump_load),
                   std::to_string(exact->max_pump_load), status,
                   std::to_string(exact->nodes)});
  }
  std::cout << table.to_string();
  std::cout << "\non every instance the heuristic matches the proven optimum, supporting\n"
               "its use on the dilution benchmarks where the ILP (like the paper's\n"
               "Gurobi runs of 100-500 s) becomes expensive.\n";
  return 0;
}
