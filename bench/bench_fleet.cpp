// Closed-loop fleet performance smoke: one machine-readable JSON line per
// benchmark assay with fleet-stepping throughput (chip-runs/sec over the
// whole closed loop, self-tests and repairs included), diagnosis latency
// percentiles, and the re-synthesis jobs the loop completed.  Emits the
// flowsynth-bench-v1 envelope via --out so CI can archive and diff
// BENCH_*.json trajectories like the other gated benches.
#include <chrono>
#include <cstring>
#include <iostream>
#include <string>

#include "assay/benchmarks.hpp"
#include "bench_json.hpp"
#include "fleet/fleet.hpp"

using namespace fsyn;

namespace {

void run(const std::string& name, int chips, int horizon, benchio::BenchWriter& writer) {
  const assay::SequencingGraph graph = assay::make_benchmark(name);

  fleet::FleetOptions options;
  options.chips = chips;
  options.cadence = 10;
  options.horizon = horizon;
  options.seed = 42;
  options.repair_workers = 2;
  options.synthesis.heuristic.seed = 42;

  // Warm-up pass (allocators, branch predictors, the synthesis cache is
  // cold either way), then the measured pass.
  fleet::FleetOptions warmup = options;
  warmup.chips = std::max(2, chips / 10);
  warmup.horizon = std::max(10, horizon / 4);
  (void)fleet::run_fleet(graph, warmup);

  const auto started = std::chrono::steady_clock::now();
  const fleet::FleetReport report = fleet::run_fleet(graph, options);
  const double wall_seconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - started).count();

  // Determinism guard: a second run must produce the identical document or
  // the throughput numbers compare different computations.
  if (fleet::run_fleet(graph, options).to_json() != report.to_json()) {
    std::cerr << "determinism violation on " << name << '\n';
    std::exit(1);
  }

  benchio::JsonObject row;
  row.add("bench", "fleet")
      .add("instance", name)
      .add("chips", chips)
      .add("horizon", horizon)
      .add("chip_runs_per_sec",
           static_cast<long long>(static_cast<double>(report.assay_runs) / wall_seconds))
      .add("self_tests", report.self_tests)
      .add("faults_detected", report.faults_detected)
      .add("faults_missed", report.faults_missed)
      .add("diagnosis_p50_ms", report.diagnosis_latency.percentile(50) * 1e3)
      .add("diagnosis_p95_ms", report.diagnosis_latency.percentile(95) * 1e3)
      .add("resynth_jobs_completed", report.repairs_succeeded)
      .add("resynth_p50_ms", report.repair_latency.percentile(50) * 1e3)
      .add("availability", report.availability())
      .add("wall_ms", wall_seconds * 1e3);
  std::cout << row.str() << std::endl;
  writer.add_instance(row);
}

}  // namespace

int main(int argc, char** argv) {
  std::string out_path;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--out") == 0 && i + 1 < argc) {
      out_path = argv[++i];
    } else {
      std::cerr << "usage: bench_fleet [--out BENCH.json]\n";
      return 2;
    }
  }
  benchio::BenchWriter writer("fleet");
  writer.config().add("cadence", 10).add("repair_workers", 2).add("seed", 42);
  run("pcr", 200, 120, writer);
  run("invitro", 100, 120, writer);
  run("protein", 50, 80, writer);
  if (!out_path.empty() && !writer.write(out_path)) {
    std::cerr << "failed to write " << out_path << "\n";
    return 1;
  }
  return 0;
}
