// Reproduces Fig. 10: snapshots of the synthesis result of case PCR in p1
// (setting 1) — cumulative per-valve actuation counts over the virtual
// valve matrix at the paper's freeze-frame times.
//
// Shape targets: running mixers show rings of >= 40; earlier rings persist
// and are reused by later routing (counts 41..4x); cells that stay '.' to
// the end are the "functionless walls" removed from the manufactured chip.
#include <iostream>

#include "assay/benchmarks.hpp"
#include "route/router.hpp"
#include "sched/list_scheduler.hpp"
#include "sim/simulator.hpp"
#include "synth/synthesis.hpp"
#include "util/error.hpp"

using namespace fsyn;

int main() {
  const auto g = assay::make_pcr();
  const auto schedule = sched::schedule_asap(g);  // Fig. 9/10 use this schedule
  const synth::SynthesisResult result = synth::synthesize(g, schedule);

  // Re-derive the problem for the chosen chip to drive the simulator.
  auto problem = synth::MappingProblem::build(
      g, schedule, arch::Architecture(result.chip_width, result.chip_height));
  sim::ChipSimulator simulator(problem, result.placement, result.routing,
                               sim::Setting::kConservative);

  std::cout << "== Fig. 10: snapshots of the PCR synthesis result (setting 1) ==\n";
  std::cout << "chip: " << result.chip_width << "x" << result.chip_height
            << " virtual valves, " << result.valve_count
            << " implemented after removing functionless walls\n\n";

  // The paper freezes at t = 2, 6, 9, 12, 15, 18, 25 tu.
  for (const int t : {2, 6, 9, 12, 15, 18, 25}) {
    std::cout << simulator.snapshot_at(t).render() << '\n';
  }

  const auto ledger = simulator.verify();
  std::cout << "final: vs_1max = " << result.vs1_max << " (" << result.vs1_pump
            << " peristalsis)   paper: 45 (40)\n";
  require(result.vs1_pump == 40, "PCR setting-1 peristalsis max must be 40 as in the paper");
  require(ledger.max_total() == result.vs1_max, "simulator and ledger must agree");
  return 0;
}
