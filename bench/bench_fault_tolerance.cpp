// Extension study: graceful degradation — re-synthesizing around worn-out
// valves.
//
// The valve-centered architecture's regularity means a chip with a few dead
// valves is not garbage: re-running dynamic-device mapping with the dead
// cells excluded restores a working (if slightly hotter) chip.  This bench
// sweeps the number of random dead valves on the PCR case and reports the
// degradation curve.
#include <iostream>

#include "assay/benchmarks.hpp"
#include "sched/list_scheduler.hpp"
#include "synth/synthesis.hpp"
#include "util/rng.hpp"
#include "util/table.hpp"

using namespace fsyn;

int main() {
  const auto g = assay::make_pcr();
  const auto schedule = sched::schedule_asap(g);
  constexpr int kGrid = 11;

  std::cout << "== Graceful degradation: PCR on an " << kGrid << "x" << kGrid
            << " matrix with worn-out valves ==\n\n";
  TextTable table;
  table.set_header({"dead valves", "status", "vs_1max", "vs_2max", "#v"});
  table.set_alignment({Align::kRight, Align::kLeft});

  Rng rng(1234);
  std::vector<Point> dead;
  int last_feasible = 0;
  for (int failures = 0; failures <= 24; failures += 4) {
    while (static_cast<int>(dead.size()) < failures) {
      const Point cell{rng.next_int(0, kGrid - 1), rng.next_int(0, kGrid - 1)};
      if (std::find(dead.begin(), dead.end(), cell) == dead.end()) dead.push_back(cell);
    }
    synth::SynthesisOptions options;
    options.grid_size = kGrid;
    options.max_chip_growth = 0;
    options.dead_valves = dead;
    options.heuristic.greedy_retries = 40;  // dead cells make packing spiky
    try {
      const auto result = synth::synthesize(g, schedule, options);
      table.add_row({std::to_string(failures), "ok",
                     std::to_string(result.vs1_max) + "(" + std::to_string(result.vs1_pump) + ")",
                     std::to_string(result.vs2_max) + "(" + std::to_string(result.vs2_pump) + ")",
                     std::to_string(result.valve_count)});
      last_feasible = failures;
    } catch (const Error&) {
      table.add_row({std::to_string(failures), "infeasible", "-", "-", "-"});
    }
  }
  std::cout << table.to_string();
  std::cout << "\nthe chip stays usable up to at least " << last_feasible
            << " random valve failures; a traditional chip with dedicated devices\n"
               "dies with its first worn-out pump valve.\n";
  return 0;
}
