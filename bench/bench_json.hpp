// Shared writer for the committed perf-trajectory files (BENCH_<name>.json).
//
// Every bench binary that participates in the regression gate serializes its
// measurements through this header so the files share one envelope:
//
//   {
//     "format": "flowsynth-bench-v1",
//     "bench": "ilp",
//     "config": { "threads": 1, "basis": "sparse_lu", ... },
//     "instances": [ { "instance": "knapsack_14", "wall_ms": ..., ... }, ... ]
//   }
//
// `tools/bench_compare.cpp` diffs two such files and fails on regressions;
// docs/benchmarking.md documents the schema and the gate.  Values are
// rendered eagerly so a bench can keep printing its traditional one-JSON-
// line-per-instance stdout stream from the same objects.
#pragma once

#include <fstream>
#include <sstream>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

namespace fsyn::benchio {

/// Flat JSON object with insertion-ordered keys; values are rendered at
/// add() time.  Covers exactly what the BENCH files need (numbers, strings,
/// booleans) — not a general JSON builder.
class JsonObject {
 public:
  JsonObject& add(std::string_view key, long long value) {
    return raw(key, std::to_string(value));
  }
  JsonObject& add(std::string_view key, long value) {
    return add(key, static_cast<long long>(value));
  }
  JsonObject& add(std::string_view key, int value) {
    return add(key, static_cast<long long>(value));
  }
  JsonObject& add(std::string_view key, double value) {
    std::ostringstream os;
    os.precision(15);
    os << value;
    // The util/json parser (and Python's) want a leading digit, which every
    // finite double printed by iostreams has; map non-finite to null.
    std::string text = os.str();
    if (text.find("inf") != std::string::npos || text.find("nan") != std::string::npos) {
      text = "null";
    }
    return raw(key, text);
  }
  JsonObject& add(std::string_view key, bool value) {
    return raw(key, value ? "true" : "false");
  }
  JsonObject& add(std::string_view key, std::string_view value) {
    std::string quoted = "\"";
    for (const char c : value) {
      if (c == '"' || c == '\\') quoted.push_back('\\');
      quoted.push_back(c);
    }
    quoted.push_back('"');
    return raw(key, quoted);
  }
  JsonObject& add(std::string_view key, const char* value) {
    return add(key, std::string_view(value));
  }

  /// Renders "{...}" on one line (the stdout stream format).
  std::string str() const {
    std::string out = "{";
    for (std::size_t i = 0; i < fields_.size(); ++i) {
      if (i > 0) out += ",";
      out += "\"" + fields_[i].first + "\":" + fields_[i].second;
    }
    out += "}";
    return out;
  }

 private:
  JsonObject& raw(std::string_view key, std::string rendered) {
    fields_.emplace_back(std::string(key), std::move(rendered));
    return *this;
  }
  std::vector<std::pair<std::string, std::string>> fields_;
};

/// Accumulates one bench run (config + per-instance measurements) and writes
/// the flowsynth-bench-v1 envelope.
class BenchWriter {
 public:
  explicit BenchWriter(std::string bench) : bench_(std::move(bench)) {}

  JsonObject& config() { return config_; }
  void add_instance(const JsonObject& instance) { instances_.push_back(instance.str()); }

  std::string to_json() const {
    std::ostringstream os;
    os << "{\n"
       << "  \"format\": \"flowsynth-bench-v1\",\n"
       << "  \"bench\": \"" << bench_ << "\",\n"
       << "  \"config\": " << config_.str() << ",\n"
       << "  \"instances\": [\n";
    for (std::size_t i = 0; i < instances_.size(); ++i) {
      os << "    " << instances_[i] << (i + 1 < instances_.size() ? ",\n" : "\n");
    }
    os << "  ]\n}\n";
    return os.str();
  }

  /// Writes the envelope to `path`; returns false on I/O failure.
  bool write(const std::string& path) const {
    std::ofstream file(path);
    if (!file.good()) return false;
    file << to_json();
    return file.good();
  }

 private:
  std::string bench_;
  JsonObject config_;
  std::vector<std::string> instances_;
};

}  // namespace fsyn::benchio
