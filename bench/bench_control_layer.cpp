// Extension study: control-layer cost of the synthesized chips.
//
// Valves with identical actuation schedules share a control pin; every pin
// needs a pressure channel from the chip boundary to its valves in the
// control layer.  This bench reports pins, channel length and residual
// crossings (cells shared by two nets, each needing a crossover) for every
// benchmark — the "hidden" cost the paper's valve count (#v) abstracts.
#include <iostream>

#include "arch/control_layer.hpp"
#include "assay/benchmarks.hpp"
#include "sched/list_scheduler.hpp"
#include "sim/control_program.hpp"
#include "synth/synthesis.hpp"
#include "util/strings.hpp"
#include "util/table.hpp"

using namespace fsyn;

int main() {
  std::cout << "== Control-layer cost of the synthesized chips ==\n\n";
  TextTable table;
  table.set_header({"case", "chip", "#v", "pins", "pins/#v", "channel len", "crossings"});
  table.set_alignment({Align::kLeft, Align::kLeft});

  for (const auto& name : assay::extended_benchmark_names()) {
    const auto g = assay::make_benchmark(name);
    const auto schedule = sched::schedule_with_policy(g, sched::make_policy(g, 1));
    const auto result = synth::synthesize(g, schedule);
    auto problem = synth::MappingProblem::build(
        g, schedule, arch::Architecture(result.chip_width, result.chip_height));

    const auto program = sim::compile_control_program(problem, result.placement,
                                                      result.routing);
    const auto groups = sim::control_pin_groups(program);
    const arch::ControlLayerPlan plan =
        arch::plan_control_layer(groups, result.chip_width, result.chip_height);
    arch::validate_control_layer(plan, result.chip_width, result.chip_height);

    table.add_row({name,
                   std::to_string(result.chip_width) + "x" + std::to_string(result.chip_height),
                   std::to_string(result.valve_count), std::to_string(plan.nets.size()),
                   format_percent(static_cast<double>(plan.nets.size()) /
                                  std::max(result.valve_count, 1)),
                   std::to_string(plan.total_length), std::to_string(plan.crossings)});
  }
  std::cout << table.to_string();
  std::cout << "\npin sharing drives the control-pin count well below #v; the remaining\n"
               "crossings measure how much a second control layer (or serpentine\n"
               "detours) the fabricated chip would need.\n";
  return 0;
}
