// Reproduces Fig. 5: dynamic mixers of different orientations (2x4 / 4x2)
// sharing the same chip area at different times with completely different
// pump valves, and demonstrates the effect on a real mapped assay.
#include <iostream>
#include <set>

#include "arch/device_types.hpp"
#include "assay/parser.hpp"
#include "sched/list_scheduler.hpp"
#include "synth/heuristic_mapper.hpp"
#include "util/error.hpp"

using namespace fsyn;

int main() {
  std::cout << "== Fig. 5: dynamic mixers sharing area with disjoint pump valves ==\n\n";

  // (b)/(c): the two volume-8 orientations sharing the same region.  In
  // this reproduction's cell-centered geometry the two rings share only the
  // 2x2 corner cells (the paper's channel-centered drawing shares none);
  // the load on the shared cells is still halved versus a dedicated mixer,
  // and the mapping constraints guarantee a valve never pumps for two
  // operations *simultaneously*.
  const arch::DeviceInstance horizontal{arch::DeviceType{4, 2}, Point{0, 0}};
  const arch::DeviceInstance vertical{arch::DeviceType{2, 4}, Point{0, 0}};
  std::cout << "4x2 mixer at (0,0) pump valves:";
  for (const Point& p : horizontal.pump_cells()) std::cout << ' ' << p;
  std::cout << "\n2x4 mixer at (0,0) pump valves:";
  for (const Point& p : vertical.pump_cells()) std::cout << ' ' << p;
  std::cout << '\n';
  const auto ring_h = horizontal.pump_cells();
  const auto ring_v = vertical.pump_cells();
  std::set<Point> shared;
  for (const Point& p : ring_h) {
    if (std::find(ring_v.begin(), ring_v.end(), p) != ring_v.end()) shared.insert(p);
  }
  std::cout << "footprints overlap: " << std::boolalpha
            << horizontal.footprint().overlaps(vertical.footprint()) << ", shared pump valves: "
            << shared.size() << " of " << ring_h.size() + ring_v.size() - shared.size() << '\n';
  require(horizontal.footprint().overlaps(vertical.footprint()),
          "Fig. 5(d) requires overlapping footprints");
  require(shared.size() <= 4, "orientations may share at most the 2x2 corner");

  // Now on a real assay: two sequential volume-8 mixes mapped onto a tiny
  // matrix; the mapper reuses the area with disjoint pump rings, so no
  // valve pumps for both operations.
  const auto g = assay::parse_assay(R"(
assay fig5
input  i1
input  i2
mix    first  volume 8 duration 6 from i1 i2
mix    second volume 8 duration 6 from first
)");
  const auto schedule = sched::schedule_asap(g);
  auto problem = synth::MappingProblem::build(g, schedule, arch::Architecture(6, 6));
  const auto outcome = synth::map_heuristic(problem);
  require(outcome.has_value(), "fig5 mapping failed");
  const auto& placement = outcome->placement;
  std::cout << "\nmapped assay on a 6x6 matrix:\n";
  for (int i = 0; i < problem.task_count(); ++i) {
    std::cout << "  " << problem.task(i).name << " -> "
              << placement[static_cast<std::size_t>(i)].type.width << "x"
              << placement[static_cast<std::size_t>(i)].type.height << " at "
              << placement[static_cast<std::size_t>(i)].origin << '\n';
  }
  std::cout << "max pump load: " << outcome->max_pump_load
            << " (both operations together would be 80 on a dedicated mixer)\n";
  require(outcome->max_pump_load == 40, "disjoint rings must keep the max at 40");
  return 0;
}
