// Batch-synthesis service benchmark.
//
// Runs the same benchmark sweep twice — sequentially and through the
// svc::BatchService thread pool — and verifies the two produce identical
// designs (same seeds => same max actuation counts) before reporting the
// wall-clock speedup.  A second phase re-submits the sweep to measure the
// result cache: every point must be a hit served in ~zero time.
//
// On an N-core host the pooled run should approach Nx for these
// embarrassingly parallel sweeps (the acceptance bar is >= 2x at
// --jobs 4 on 4 cores); on a single core it degrades gracefully to ~1x.
#include <atomic>
#include <chrono>
#include <cstring>
#include <iostream>
#include <thread>
#include <vector>

#include "assay/benchmarks.hpp"
#include "bench_json.hpp"
#include "sched/list_scheduler.hpp"
#include "svc/result_cache.hpp"
#include "svc/service.hpp"
#include "synth/synthesis.hpp"
#include "util/strings.hpp"

namespace {

using namespace fsyn;
using Clock = std::chrono::steady_clock;

struct SweepPoint {
  std::string benchmark;
  int policy;
};

std::vector<SweepPoint> sweep() {
  std::vector<SweepPoint> points;
  for (const char* name : {"pcr", "invitro", "protein", "mixing_tree"}) {
    for (int policy = 0; policy < 3; ++policy) points.push_back({name, policy});
  }
  return points;
}

synth::SynthesisOptions options_for_point() {
  synth::SynthesisOptions options;
  // A fixed grid keeps each point focused on mapping+routing (no chip-size
  // sweep), which is the regime a design-space exploration service runs in.
  options.grid_size = 12;
  return options;
}

double seconds_since(Clock::time_point from) {
  return std::chrono::duration<double>(Clock::now() - from).count();
}

/// Sharded-cache contention micro-check: `thread_count` threads hammer one
/// ResultCache with a mixed lookup/insert load over a key range wide enough
/// to spread across shards.  Reports aggregate ops/sec (informational; the
/// shard win only shows on multi-core hosts).
double cache_contention_ops_per_sec(int thread_count) {
  constexpr int kOpsPerThread = 200000;
  constexpr std::uint64_t kKeyRange = 4096;
  svc::ResultCache cache(256);
  auto payload = std::make_shared<const synth::SynthesisResult>();

  std::atomic<bool> go{false};
  std::vector<std::thread> threads;
  threads.reserve(static_cast<std::size_t>(thread_count));
  for (int t = 0; t < thread_count; ++t) {
    threads.emplace_back([&, t] {
      while (!go.load(std::memory_order_acquire)) std::this_thread::yield();
      // Cheap splitmix-style key walk, distinct stream per thread.
      std::uint64_t state = 0x9e3779b97f4a7c15ULL * static_cast<std::uint64_t>(t + 1);
      for (int op = 0; op < kOpsPerThread; ++op) {
        state += 0x9e3779b97f4a7c15ULL;
        std::uint64_t key = state;
        key ^= key >> 30;
        key *= 0xbf58476d1ce4e5b9ULL;
        key %= kKeyRange;
        if ((op & 7) == 0) {
          cache.insert(key, payload);
        } else {
          (void)cache.lookup(key);
        }
      }
    });
  }
  const Clock::time_point started = Clock::now();
  go.store(true, std::memory_order_release);
  for (std::thread& thread : threads) thread.join();
  const double seconds = seconds_since(started);
  return static_cast<double>(thread_count) * kOpsPerThread / seconds;
}

}  // namespace

int main(int argc, char** argv) {
  std::string out_path;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--out") == 0 && i + 1 < argc) {
      out_path = argv[++i];
    } else {
      std::cerr << "usage: bench_service [--out BENCH.json]\n";
      return 2;
    }
  }
  const std::vector<SweepPoint> points = sweep();
  const int jobs = 4;

  // ---- sequential reference ----
  const Clock::time_point sequential_started = Clock::now();
  std::vector<synth::SynthesisResult> sequential;
  sequential.reserve(points.size());
  for (const SweepPoint& point : points) {
    const assay::SequencingGraph graph = assay::make_benchmark(point.benchmark);
    const sched::Schedule schedule =
        sched::schedule_with_policy(graph, sched::make_policy(graph, point.policy));
    sequential.push_back(synth::synthesize(graph, schedule, options_for_point()));
  }
  const double sequential_seconds = seconds_since(sequential_started);

  // ---- pooled run ----
  svc::BatchService::Config config;
  config.workers = jobs;
  svc::BatchService service(config);

  auto submit_all = [&] {
    std::vector<std::future<svc::JobResult>> futures;
    futures.reserve(points.size());
    for (const SweepPoint& point : points) {
      svc::JobSpec spec;
      spec.name = point.benchmark;
      spec.graph = assay::make_benchmark(point.benchmark);
      spec.policy_increments = point.policy;
      spec.options = options_for_point();
      futures.push_back(service.submit(std::move(spec)));
    }
    return futures;
  };

  const Clock::time_point pooled_started = Clock::now();
  auto futures = submit_all();
  int mismatches = 0;
  for (std::size_t i = 0; i < futures.size(); ++i) {
    const svc::JobResult result = futures[i].get();
    if (result.status != svc::JobStatus::kDone) {
      std::cerr << "job " << points[i].benchmark << "/p" << points[i].policy + 1
                << " did not finish: " << result.error << '\n';
      return 1;
    }
    const synth::SynthesisResult& pooled = *result.result;
    const synth::SynthesisResult& reference = sequential[i];
    if (pooled.vs1_max != reference.vs1_max || pooled.vs2_max != reference.vs2_max ||
        pooled.valve_count != reference.valve_count ||
        pooled.chip_width != reference.chip_width) {
      std::cerr << "MISMATCH " << points[i].benchmark << "/p" << points[i].policy + 1
                << ": pooled vs1_max=" << pooled.vs1_max
                << " sequential vs1_max=" << reference.vs1_max << '\n';
      ++mismatches;
    }
  }
  const double pooled_seconds = seconds_since(pooled_started);

  // ---- cached re-run ----
  const Clock::time_point cached_started = Clock::now();
  auto cached_futures = submit_all();
  int cache_hits = 0;
  for (auto& future : cached_futures) {
    if (future.get().cache_hit) ++cache_hits;
  }
  const double cached_seconds = seconds_since(cached_started);

  const svc::MetricsSnapshot metrics = service.metrics();
  std::cout << "bench_service: " << points.size() << " sweep points, " << jobs
            << " workers\n"
            << "  sequential: " << format_fixed(sequential_seconds, 2) << " s\n"
            << "  pooled:     " << format_fixed(pooled_seconds, 2) << " s  (speedup "
            << format_fixed(sequential_seconds / pooled_seconds, 2) << "x)\n"
            << "  cached:     " << format_fixed(cached_seconds, 3) << " s  (" << cache_hits
            << "/" << points.size() << " hits)\n"
            << "  identical designs: " << (mismatches == 0 ? "yes" : "NO") << "\n"
            << "  cache: " << metrics.cache.hits << " hits / " << metrics.cache.misses
            << " misses\n"
            << "  synthesis latency: p50 "
            << format_fixed(metrics.synthesis_latency.percentile(50), 3) << " s, p95 "
            << format_fixed(metrics.synthesis_latency.percentile(95), 3) << " s, p99 "
            << format_fixed(metrics.synthesis_latency.percentile(99), 3) << " s, max "
            << format_fixed(metrics.synthesis_latency.max_seconds, 3) << " s\n";

  // ---- cache contention micro-check (informational, non-gating) ----
  const double ops_1t = cache_contention_ops_per_sec(1);
  const double ops_4t = cache_contention_ops_per_sec(4);
  std::cout << "  cache contention: " << format_fixed(ops_1t / 1e6, 2) << " Mops/s @1t, "
            << format_fixed(ops_4t / 1e6, 2) << " Mops/s @4t (scaling "
            << format_fixed(ops_4t / ops_1t, 2) << "x)\n";

  if (!out_path.empty()) {
    benchio::BenchWriter writer("service");
    writer.config().add("workers", jobs).add("sweep_points", static_cast<long long>(points.size()));
    benchio::JsonObject row;
    row.add("bench", "service")
        .add("instance", "sweep")
        .add("wall_ms", pooled_seconds * 1e3)
        .add("sequential_ms", sequential_seconds * 1e3)
        .add("speedup", sequential_seconds / pooled_seconds)
        .add("cached_ms", cached_seconds * 1e3)
        .add("cache_hits", cache_hits)
        .add("identical_designs", mismatches == 0)
        .add("synth_p50_s", metrics.synthesis_latency.percentile(50))
        .add("synth_p95_s", metrics.synthesis_latency.percentile(95));
    writer.add_instance(row);
    benchio::JsonObject contention;
    contention.add("bench", "service")
        .add("instance", "cache_contention")
        .add("mops_per_sec_1t", ops_1t / 1e6)
        .add("mops_per_sec_4t", ops_4t / 1e6)
        .add("scaling_4t", ops_4t / ops_1t);
    writer.add_instance(contention);
    if (!writer.write(out_path)) {
      std::cerr << "failed to write " << out_path << "\n";
      return 1;
    }
  }
  if (mismatches > 0 || cache_hits != static_cast<int>(points.size())) return 1;
  return 0;
}
