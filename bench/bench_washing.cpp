// Extension study: cross-contamination wash cost of the synthesized chips.
//
// The paper assumes sample flows can be manipulated freely and defers flow
// restrictions to future work (Section 5).  This bench quantifies that
// deferred cost: how many valve cells must be flushed because transports
// carrying different fluids share channel cells, and what the washes add to
// the busiest valve's actuation count.
#include <algorithm>
#include <iostream>

#include "assay/benchmarks.hpp"
#include "route/contamination.hpp"
#include "sched/list_scheduler.hpp"
#include "synth/synthesis.hpp"
#include "util/table.hpp"

using namespace fsyn;

int main() {
  std::cout << "== Washing cost of shared channels (paper Section 5 future work) ==\n\n";
  TextTable table;
  table.set_header({"case", "paths", "washes", "washed cells", "vs_1max", "vs_1max + washing"});
  table.set_alignment({Align::kLeft});

  for (const auto& name : assay::benchmark_names()) {
    const auto g = assay::make_benchmark(name);
    const auto schedule = sched::schedule_with_policy(g, sched::make_policy(g, 1));
    const auto result = synth::synthesize(g, schedule);
    auto problem = synth::MappingProblem::build(
        g, schedule, arch::Architecture(result.chip_width, result.chip_height));

    const route::WashPlan plan = route::plan_washes(problem, result.routing);
    const Grid<int> extra = plan.extra_control(result.chip_width, result.chip_height);
    const Grid<int> base = result.ledger_setting1.total();
    int washed_max = 0;
    base.for_each([&](const Point& p, const int& v) {
      washed_max = std::max(washed_max, v + extra.at(p));
    });

    table.add_row({name, std::to_string(result.routing.paths.size()),
                   std::to_string(plan.washes.size()), std::to_string(plan.total_washed_cells),
                   std::to_string(result.vs1_max), std::to_string(washed_max)});
  }
  std::cout << table.to_string();
  std::cout << "\nwashing adds a bounded number of control cycles on shared channel\n"
               "cells; the chip's reliability ranking versus the traditional design is\n"
               "unchanged because pump actuations still dominate the busiest valve.\n";
  return 0;
}
