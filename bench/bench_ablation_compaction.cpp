// Ablation (extension): storage-aware schedule compaction before mapping.
//
// Delaying operations within their slack closes producer-consumer gaps, so
// in situ storages hold products for less time and the valve matrix packs
// tighter.  This bench compares synthesis on the raw policy schedule vs the
// compacted one for every benchmark.
#include <iostream>

#include "assay/benchmarks.hpp"
#include "sched/compaction.hpp"
#include "synth/synthesis.hpp"
#include "util/table.hpp"

using namespace fsyn;

int main() {
  std::cout << "== Ablation: storage-aware schedule compaction ==\n\n";
  TextTable table;
  table.set_header({"case", "schedule", "storage time", "chip", "vs_1max", "#v", "T(s)"});
  table.set_alignment({Align::kLeft, Align::kLeft});

  for (const auto& name : assay::extended_benchmark_names()) {
    const auto g = assay::make_benchmark(name);
    const auto policy = sched::make_policy(g, 1);
    const sched::Schedule raw = sched::schedule_with_policy(g, policy);
    const sched::Schedule compacted = sched::compact_schedule(raw, policy);

    for (const bool use_compacted : {false, true}) {
      const sched::Schedule& schedule = use_compacted ? compacted : raw;
      try {
        const auto r = synth::synthesize(g, schedule);
        table.add_row({name, use_compacted ? "compacted" : "raw",
                       std::to_string(sched::total_storage_time(schedule)),
                       std::to_string(r.chip_width) + "x" + std::to_string(r.chip_height),
                       std::to_string(r.vs1_max) + "(" + std::to_string(r.vs1_pump) + ")",
                       std::to_string(r.valve_count),
                       std::to_string(static_cast<int>(r.runtime_seconds * 10) / 10.0)});
      } catch (const Error&) {
        table.add_row({name, use_compacted ? "compacted" : "raw",
                       std::to_string(sched::total_storage_time(schedule)), "infeasible", "-",
                       "-", "-"});
      }
    }
    table.add_separator();
  }
  std::cout << table.to_string();
  std::cout << "\ncompaction reduces in-situ storage waiting (often to a fraction of the\n"
               "raw schedule), which lets the same assay fit a smaller matrix with\n"
               "fewer implemented valves.\n";
  return 0;
}
