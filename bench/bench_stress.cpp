// Scalability stress test beyond the paper's benchmark sizes: random
// assays of growing mixing-op counts through the full pipeline.
//
// The paper's largest case has 47 mixing operations (Gurobi: 489 s); the
// heuristic pipeline here should stay interactive well past that.
#include <iostream>

#include "assay/random_assay.hpp"
#include "sched/list_scheduler.hpp"
#include "synth/synthesis.hpp"
#include "util/rng.hpp"
#include "util/strings.hpp"
#include "util/table.hpp"

using namespace fsyn;

int main() {
  std::cout << "== Stress: random assays through the full pipeline ==\n\n";
  TextTable table;
  table.set_header({"mixes", "ops", "makespan", "chip", "vs_1max", "#v", "T(s)"});

  for (const int mixes : {10, 20, 40, 60, 80}) {
    Rng rng(static_cast<std::uint64_t>(mixes) * 31 + 1);
    assay::RandomAssayOptions gen;
    gen.mixing_ops = mixes;
    gen.reuse_probability = 0.55;
    gen.detect_probability = 0.15;
    const auto g = assay::make_random_assay(rng, gen);
    const auto schedule = sched::schedule_with_policy(g, sched::make_policy(g, 1));

    synth::SynthesisOptions options;
    options.heuristic.sa_iterations = 6000;
    options.chip_sweep = 1;
    try {
      const auto r = synth::synthesize(g, schedule, options);
      table.add_row({std::to_string(mixes), std::to_string(g.size()),
                     std::to_string(schedule.makespan()),
                     std::to_string(r.chip_width) + "x" + std::to_string(r.chip_height),
                     std::to_string(r.vs1_max) + "(" + std::to_string(r.vs1_pump) + ")",
                     std::to_string(r.valve_count), format_fixed(r.runtime_seconds, 2)});
    } catch (const Error& e) {
      table.add_row({std::to_string(mixes), std::to_string(g.size()),
                     std::to_string(schedule.makespan()), "failed", "-", "-", "-"});
    }
  }
  std::cout << table.to_string();
  std::cout << "\nthe paper's largest case (47 mixes) takes Gurobi 489 s; the heuristic\n"
               "pipeline synthesizes random 80-mix assays in seconds.\n";
  return 0;
}
