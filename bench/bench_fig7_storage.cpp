// Reproduces Fig. 7: the life cycle of an in situ on-chip storage — the
// storage s_c opens when the first parent product arrives, may overlap its
// parent devices while they are still working, and turns into the working
// device d_c when the operation starts.
//
// Demonstrated on the PCR case (the paper uses the same o_a/o_b/o_c
// pattern): s5 opens at 15 tu holding o2's product while o1 still runs,
// and becomes the mixer for o5 at 18 tu.
#include <iostream>

#include "assay/benchmarks.hpp"
#include "sched/list_scheduler.hpp"
#include "synth/synthesis.hpp"
#include "util/error.hpp"
#include "util/table.hpp"

using namespace fsyn;

int main() {
  const auto g = assay::make_pcr();
  const auto schedule = sched::schedule_asap(g);
  // A deliberately tight matrix so the mapper must exploit the overlap
  // permission, as the paper's 9x9 PCR result does (Fig. 10(d): s7 overlaps
  // its parent device d5).
  synth::SynthesisOptions options;
  options.grid_size = 8;
  const auto result = synth::synthesize(g, schedule, options);
  auto problem = synth::MappingProblem::build(
      g, schedule, arch::Architecture(result.chip_width, result.chip_height));

  std::cout << "== Fig. 7: in situ on-chip storages of the PCR case ==\n\n";
  TextTable table;
  table.set_header({"operation", "storage opens", "device starts", "device releases",
                    "storage phase", "overlaps a parent device"});
  table.set_alignment({Align::kLeft});

  int storages = 0, overlapping = 0;
  for (int i = 0; i < problem.task_count(); ++i) {
    const synth::MappingTask& task = problem.task(i);
    bool overlaps_parent = false;
    for (int j = 0; j < problem.task_count(); ++j) {
      if (j == i || !problem.parent_child(i, j)) continue;
      if (problem.task(j).start > task.start) continue;  // j must be the parent
      if (result.placement[static_cast<std::size_t>(i)].footprint().overlaps(
              result.placement[static_cast<std::size_t>(j)].footprint()) &&
          problem.time_overlap(i, j)) {
        overlaps_parent = true;
      }
    }
    if (task.has_storage_phase()) {
      ++storages;
      overlapping += overlaps_parent;
    }
    table.add_row({task.name, std::to_string(task.storage_from), std::to_string(task.start),
                   std::to_string(task.release), task.has_storage_phase() ? "yes" : "no",
                   overlaps_parent ? "yes" : "no"});
  }
  std::cout << table.to_string();

  std::cout << "\n" << storages << " of " << problem.task_count()
            << " operations need an in situ storage; " << overlapping
            << " of those overlap a still-working parent device (the c5 relaxation\n"
               "of Eq. 12).  The storage is transformed into the working mixer in\n"
               "place, so the product transfer is trivial (Fig. 7's s_c -> d_c).\n";

  // Fig. 9/7 cross-check: s5 opens at 15 (o2's product) and becomes o5's
  // mixer at 18; s7 opens at 15 and becomes o7's mixer at 25.
  for (int i = 0; i < problem.task_count(); ++i) {
    const synth::MappingTask& task = problem.task(i);
    if (task.name == "o5") {
      require(task.storage_from == 15 && task.start == 18, "s5 window must be [15, 18)");
    }
    if (task.name == "o7") {
      require(task.storage_from == 15 && task.start == 25, "s7 window must be [15, 25)");
    }
  }
  std::cout << "\ns5 window [15,18) and s7 window [15,25) match Fig. 9/Fig. 7.\n";
  return 0;
}
