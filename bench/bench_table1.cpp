// Reproduces the paper's Table 1: all four benchmarks at policies p1-p3,
// comparing the optimally-bound traditional design against dynamic-device
// mapping in both actuation settings.
//
// Paper reference values (DAC 2015, Table 1):
//   average imp_1vs = 55.76%, imp_2vs = 72.97%, imp_v = 10.62%.
// Absolute valve counts use this reproduction's documented cost models
// (DESIGN.md §3.3), so the #v columns differ from the paper while the
// improvement columns are directly comparable.
#include <iostream>

#include "report/table1.hpp"
#include "util/strings.hpp"
#include "util/table.hpp"

namespace {

struct PaperRow {
  const char* case_name;
  const char* policy;
  int vs_tmax;
  const char* vs1;
  const char* imp1;
  const char* vs2;
  const char* imp2;
};

constexpr PaperRow kPaper[] = {
    {"pcr", "p1", 160, "45(40)", "71.88%", "35(30)", "78.13%"},
    {"pcr", "p2", 80, "45(40)", "43.75%", "34(30)", "57.50%"},
    {"pcr", "p3", 80, "43(40)", "46.25%", "31(30)", "61.25%"},
    {"mixing_tree", "p1", 280, "93(80)", "66.79%", "46(42)", "83.57%"},
    {"mixing_tree", "p2", 200, "93(80)", "53.50%", "46(42)", "77.00%"},
    {"mixing_tree", "p3", 160, "90(80)", "43.75%", "60(50)", "62.50%"},
    {"interpolating_dilution", "p1", 360, "145(120)", "59.72%", "72(65)", "80.00%"},
    {"interpolating_dilution", "p2", 240, "94(80)", "60.83%", "56(42)", "76.67%"},
    {"interpolating_dilution", "p3", 200, "92(80)", "54.00%", "56(50)", "72.00%"},
    {"exponential_dilution", "p1", 320, "135(120)", "57.81%", "75(75)", "76.56%"},
    {"exponential_dilution", "p2", 280, "134(120)", "52.14%", "71(65)", "74.64%"},
    {"exponential_dilution", "p3", 240, "99(80)", "58.75%", "58(40)", "75.83%"},
};

}  // namespace

int main() {
  std::cout << "== Table 1: reliability-aware synthesis vs. optimally-bound "
               "traditional designs ==\n\n";
  const auto rows = fsyn::report::run_full_table();
  std::cout << fsyn::report::format_table(rows) << '\n';

  std::cout << "== Paper reference (DAC 2015, Table 1) vs. this reproduction ==\n";
  fsyn::TextTable cmp;
  cmp.set_header({"case", "Po.", "vs_tmax", "paper vs_1max", "ours", "paper imp_1vs", "ours",
                  "paper imp_2vs", "ours"});
  cmp.set_alignment({fsyn::Align::kLeft, fsyn::Align::kLeft});
  for (std::size_t i = 0; i < rows.size() && i < std::size(kPaper); ++i) {
    const auto& ours = rows[i];
    const auto& paper = kPaper[i];
    cmp.add_row({paper.case_name, paper.policy, std::to_string(paper.vs_tmax), paper.vs1,
                 std::to_string(ours.vs1_max) + "(" + std::to_string(ours.vs1_pump) + ")",
                 paper.imp1, fsyn::format_percent(ours.improvement1()), paper.imp2,
                 fsyn::format_percent(ours.improvement2())});
  }
  std::cout << cmp.to_string();
  std::cout << "\npaper averages: imp_1vs 55.76%  imp_2vs 72.97%  imp_v 10.62%\n";
  return 0;
}
