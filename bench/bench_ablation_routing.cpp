// Ablation: routing-convenient mapping (paper Section 3.4, Eq. 13-16).
//
// The distance-d constraints force sequential devices to be neighbours so
// product transfers are trivial.  Dropping them frees the mapper but makes
// transfers long; this bench quantifies the transfer-length difference.
#include <algorithm>
#include <iostream>

#include "assay/benchmarks.hpp"
#include "sched/list_scheduler.hpp"
#include "synth/synthesis.hpp"
#include "util/strings.hpp"
#include "util/table.hpp"

using namespace fsyn;

namespace {

struct TransferStats {
  int count = 0;
  int total = 0;
  int longest = 0;
};

TransferStats transfer_stats(const synth::SynthesisResult& r) {
  TransferStats stats;
  for (const route::RoutedPath& path : r.routing.paths) {
    if (path.kind != route::TransportKind::kTransfer) continue;
    ++stats.count;
    stats.total += path.length();
    stats.longest = std::max(stats.longest, path.length());
  }
  return stats;
}

}  // namespace

int main() {
  std::cout << "== Ablation: routing-convenient mapping (Eq. 13-16) ==\n\n";
  TextTable table;
  table.set_header({"case", "constraints", "vs_1max", "#transfers", "avg len", "max len"});
  table.set_alignment({Align::kLeft, Align::kLeft});

  for (const auto& name : assay::benchmark_names()) {
    const auto g = assay::make_benchmark(name);
    const auto schedule = sched::schedule_with_policy(g, sched::make_policy(g, 1));
    for (const bool convenient : {true, false}) {
      synth::SynthesisOptions options;
      options.routing_convenient = convenient;
      const auto r = synth::synthesize(g, schedule, options);
      const TransferStats stats = transfer_stats(r);
      table.add_row({name, convenient ? "on (paper)" : "off",
                     std::to_string(r.vs1_max) + "(" + std::to_string(r.vs1_pump) + ")",
                     std::to_string(stats.count),
                     stats.count ? format_fixed(static_cast<double>(stats.total) / stats.count, 1)
                                 : "-",
                     std::to_string(stats.longest)});
    }
    table.add_separator();
  }
  std::cout << table.to_string();
  std::cout << "\nwith the constraints on, sequential devices sit within distance d = 2,\n"
               "so product transfers stay short ('we only need trivial routings between\n"
               "devices', Section 4).\n";
  return 0;
}
