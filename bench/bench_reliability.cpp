// Reliability-engine performance smoke: one machine-readable JSON line per
// benchmark assay with Monte Carlo throughput (trials/sec at 1 worker and
// on a 4-worker pool, plus the speedup), the lifetime headline numbers,
// and degraded re-synthesis latency percentiles over the top-wear fault
// rounds.  Mirrors the bench_ilp_solver line format so CI can archive and
// diff BENCH_*.json trajectories.
#include <chrono>
#include <cstring>
#include <iostream>
#include <string>

#include "assay/benchmarks.hpp"
#include "bench_json.hpp"
#include "rel/engine.hpp"
#include "sched/list_scheduler.hpp"
#include "svc/thread_pool.hpp"
#include "synth/synthesis.hpp"

using namespace fsyn;

namespace {

double measure_trials_per_second(const std::vector<sim::ValveWear>& valves,
                                 rel::MonteCarloOptions options) {
  // Warm-up pass (allocators, branch predictors), then the measured pass.
  rel::MonteCarloOptions warmup = options;
  warmup.trials = options.trials / 10;
  (void)rel::estimate_lifetime(valves, warmup);
  return rel::estimate_lifetime(valves, options).trials_per_second;
}

void run(const std::string& name, int trials, int fault_rounds,
         benchio::BenchWriter& writer) {
  const assay::SequencingGraph graph = assay::make_benchmark(name);
  const sched::Schedule schedule =
      sched::schedule_with_policy(graph, sched::make_policy(graph, 0));
  const synth::SynthesisResult healthy = synth::synthesize(graph, schedule);
  const std::vector<sim::ValveWear> valves = sim::valve_wear(healthy.ledger_setting1);

  rel::MonteCarloOptions mc;
  mc.trials = trials;
  mc.seed = 42;
  mc.block_size = 256;

  const double serial_tps = measure_trials_per_second(valves, mc);

  svc::ThreadPool pool(4);
  rel::MonteCarloOptions pooled = mc;
  pooled.pool = &pool;
  const double pooled_tps = measure_trials_per_second(valves, pooled);

  // Determinism guard: the pooled estimate must equal the serial one bit
  // for bit, or the throughput numbers compare different computations.
  const double serial_mttf = rel::estimate_lifetime(valves, mc).mttf_runs;
  const double pooled_mttf = rel::estimate_lifetime(valves, pooled).mttf_runs;
  if (serial_mttf != pooled_mttf) {
    std::cerr << "determinism violation on " << name << '\n';
    std::exit(1);
  }

  rel::ReliabilityOptions options;
  options.monte_carlo = mc;
  options.monte_carlo.trials = 2000;  // rounds re-estimate lifetime; keep cheap
  options.inject_top = fault_rounds;
  const rel::ReliabilityReport report = rel::analyze(graph, schedule, healthy, options);
  int remapped = 0;
  for (const rel::RepairRound& round : report.rounds) remapped += round.feasible ? 1 : 0;

  benchio::JsonObject row;
  row.add("bench", "reliability")
      .add("instance", name)
      .add("valves", static_cast<long long>(valves.size()))
      .add("trials", trials)
      .add("mttf_runs", serial_mttf)
      .add("trials_per_sec_1t", static_cast<long long>(serial_tps))
      .add("trials_per_sec_pool4", static_cast<long long>(pooled_tps))
      .add("speedup_pool4", pooled_tps / serial_tps)
      .add("fault_rounds", static_cast<long long>(report.rounds.size()))
      .add("remapped", remapped)
      .add("resynth_p50_ms", report.resynthesis_latency.percentile(50) * 1e3)
      .add("resynth_p95_ms", report.resynthesis_latency.percentile(95) * 1e3);
  std::cout << row.str() << std::endl;
  writer.add_instance(row);
}

}  // namespace

int main(int argc, char** argv) {
  std::string out_path;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--out") == 0 && i + 1 < argc) {
      out_path = argv[++i];
    } else {
      std::cerr << "usage: bench_reliability [--out BENCH.json]\n";
      return 2;
    }
  }
  benchio::BenchWriter writer("reliability");
  writer.config().add("pool_workers", 4).add("seed", 42);
  run("pcr", 400000, 5, writer);
  run("invitro", 400000, 5, writer);
  run("protein", 200000, 3, writer);
  if (!out_path.empty() && !writer.write(out_path)) {
    std::cerr << "failed to write " << out_path << "\n";
    return 1;
  }
  return 0;
}
