// Reproduces the motivating example of Figures 2 and 3: two mixing
// operations on (a) a traditional dedicated ring mixer with fixed valve
// roles and (b) a rectangular mixer with the valve-role-changing concept.
//
// Paper: the dedicated mixer reaches 80 actuations on its three pump valves
// (Fig. 2(f)); role changing reduces the largest count to 48 with one valve
// fewer (Fig. 3(b)) — "the service life of this mixer is nearly doubled".
#include <algorithm>
#include <iostream>
#include <vector>

#include "util/error.hpp"
#include "util/strings.hpp"
#include "util/table.hpp"

namespace {

constexpr int kPumpPerOp = 40;  // after [9], as in the paper

/// Fig. 2: 9 valves — 3 dedicated pump valves, 6 dedicated control valves.
/// Per operation the two I/O junction valves cycle for fill AND drain
/// (4 actuations) and the four guard valves cycle once (2 actuations).
struct DedicatedMixer {
  std::vector<int> actuations = std::vector<int>(9, 0);

  void run_mix() {
    for (int pump = 0; pump < 3; ++pump) actuations[static_cast<std::size_t>(pump)] += kPumpPerOp;
    actuations[3] += 4;  // inlet junction
    actuations[4] += 4;  // outlet junction
    for (int guard = 5; guard < 9; ++guard) actuations[static_cast<std::size_t>(guard)] += 2;
  }
};

/// Fig. 3: 8 valves around a rectangular ring; roles rotate between
/// operations, so each operation pumps with a different triple and the
/// remaining valves serve as control valves (2 actuations each).
struct RoleChangingMixer {
  std::vector<int> actuations = std::vector<int>(8, 0);

  void run_mix(int op_index) {
    const int base = op_index % 2 == 0 ? 0 : 4;  // opposite sides alternate
    for (int k = 0; k < 3; ++k) {
      actuations[static_cast<std::size_t>(base + k)] += kPumpPerOp;
    }
    for (int v = 0; v < 8; ++v) {
      if (v < base || v >= base + 3) actuations[static_cast<std::size_t>(v)] += 2;
    }
  }
};

int max_of(const std::vector<int>& xs) { return *std::max_element(xs.begin(), xs.end()); }

}  // namespace

int main() {
  std::cout << "== Fig. 2 / Fig. 3: why valve-role changing matters ==\n\n";

  DedicatedMixer dedicated;
  RoleChangingMixer dynamic;
  fsyn::TextTable table;
  table.set_header({"ops executed", "dedicated mixer max (9 valves)",
                    "role-changing max (8 valves)", "reduction"});
  for (int op = 0; op < 6; ++op) {
    dedicated.run_mix();
    dynamic.run_mix(op);
    const int dmax = max_of(dedicated.actuations);
    const int rmax = max_of(dynamic.actuations);
    table.add_row({std::to_string(op + 1), std::to_string(dmax), std::to_string(rmax),
                   fsyn::format_percent(1.0 - static_cast<double>(rmax) / dmax)});
  }
  std::cout << table.to_string() << '\n';

  // The paper's headline numbers after two operations.
  DedicatedMixer d2;
  RoleChangingMixer r2;
  d2.run_mix();
  d2.run_mix();
  r2.run_mix(0);
  r2.run_mix(1);
  std::cout << "after 2 ops: dedicated max = " << max_of(d2.actuations)
            << " (paper Fig. 2(f): 80), role-changing max = " << max_of(r2.actuations)
            << " (paper Fig. 3(b): 48)\n";
  fsyn::require(max_of(d2.actuations) == 80, "dedicated mixer must reach 80 after 2 ops");
  fsyn::require(max_of(r2.actuations) <= 48, "role changing must stay at or below 48");
  std::cout << "per-valve counts, dedicated:    ";
  for (const int v : d2.actuations) std::cout << v << ' ';
  std::cout << "\nper-valve counts, role-change:  ";
  for (const int v : r2.actuations) std::cout << v << ' ';
  std::cout << "\n\nrole changing nearly doubles the mixer's service life while using one "
               "valve fewer.\n";
  return 0;
}
