// Reproduces Fig. 9: the scheduling result of case PCR (policy p1 input)
// with 3 tu transport delay, drawn as a Gantt chart.
//
// Paper milestones: o3/o4 end at 3 tu, o6 runs 6..12, o2 ends at 12,
// o1 at 15, o5 runs 18..22, o7 runs 25..29; storages s6/s5/s7 appear at
// 3/15/15 tu (product-arrival windows).
#include <iostream>

#include "assay/benchmarks.hpp"
#include "sched/gantt.hpp"
#include "sched/list_scheduler.hpp"
#include "util/error.hpp"

using namespace fsyn;

int main() {
  const auto g = assay::make_pcr();
  const auto schedule = sched::schedule_asap(g);

  std::cout << "== Fig. 9: scheduling result of case PCR (transport delay 3 tu) ==\n\n";
  std::cout << sched::render_gantt(schedule) << '\n';
  std::cout << "legend: '=' operation executing, '.' product(s) waiting in the\n"
               "in situ on-chip storage of the consuming operation (s5/s6/s7).\n\n";

  struct Milestone {
    const char* name;
    int start;
    int end;
  };
  constexpr Milestone kPaper[] = {{"o1", 0, 15}, {"o2", 0, 12}, {"o3", 0, 3}, {"o4", 0, 3},
                                  {"o5", 18, 22}, {"o6", 6, 12}, {"o7", 25, 29}};
  bool all_match = true;
  for (const Milestone& m : kPaper) {
    for (const assay::Operation& op : g.operations()) {
      if (op.name != m.name) continue;
      const bool match =
          schedule.start_of(op.id) == m.start && schedule.end_of(op.id) == m.end;
      std::cout << m.name << ": ours [" << schedule.start_of(op.id) << ", "
                << schedule.end_of(op.id) << ")  paper [" << m.start << ", " << m.end << ") "
                << (match ? "MATCH" : "MISMATCH") << '\n';
      all_match &= match;
    }
  }
  require(all_match, "the PCR schedule must reproduce Fig. 9 exactly");
  std::cout << "\nmakespan: " << schedule.makespan() << " tu (paper: 29 tu)\n";
  return 0;
}
