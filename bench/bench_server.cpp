// flowsynthd loopback benchmark.
//
// Phase 1 measures raw HTTP service time: N client threads hammer
// GET /healthz (cheapest route, measures the reactor + parser, not
// synthesis) and GET /v1/jobs (status listing) at 1, 8 and 64 concurrent
// connections, reporting req/s and p50/p95/p99 latency per level as one
// JSON line each — the same trajectory format as bench_ilp_solver.
//
// Phase 2 measures the job path end-to-end: submit + SSE-watch to the
// terminal event for cache-hot synthesis jobs.
//
// Phase 3 demonstrates admission shedding: a one-worker server with a
// tight interactive route deadline is flooded with distinct synthesis
// jobs; once the latency histogram warms and the queue deepens, the
// estimated completion blows the deadline and submissions come back
// 429 + Retry-After.  The run fails (exit 1) if nothing was shed or
// nothing was accepted — both halves are the point.
//
// `--out PATH` additionally writes the run as a flowsynth-bench-v1 file
// (bench_json.hpp envelope) for the bench_compare regression gate; the
// committed baseline lives at bench/results/BENCH_server.json.
#include <algorithm>
#include <atomic>
#include <cctype>
#include <chrono>
#include <iostream>
#include <string>
#include <thread>
#include <vector>

#include "bench_json.hpp"
#include "net/api.hpp"
#include "net/client.hpp"
#include "net/server.hpp"
#include "util/json.hpp"

namespace {

using namespace fsyn;
using Clock = std::chrono::steady_clock;

struct Percentiles {
  double p50 = 0.0;
  double p95 = 0.0;
  double p99 = 0.0;
};

Percentiles percentiles_ms(std::vector<double>& samples) {
  Percentiles out;
  if (samples.empty()) return out;
  std::sort(samples.begin(), samples.end());
  const auto at = [&](double q) {
    const std::size_t index = static_cast<std::size_t>(q * (samples.size() - 1));
    return samples[index];
  };
  out.p50 = at(0.50);
  out.p95 = at(0.95);
  out.p99 = at(0.99);
  return out;
}

/// One running server (ephemeral port) with its serve() thread.
struct Server {
  explicit Server(net::JobManager::Config manager_config = {},
                  net::AdmissionConfig admission = net::AdmissionConfig()) {
    manager_config.service.overflow = svc::OverflowPolicy::kReject;
    manager = std::make_unique<net::JobManager>(std::move(manager_config));
    manager->recover();
    net::HttpServer::Config server_config;
    server_config.port = 0;
    server_config.max_connections = 512;
    server = std::make_unique<net::HttpServer>(
        server_config, *manager, net::make_api_router(*manager, admission));
    server->bind();
    thread = std::thread([this] { server->serve(); });
  }

  ~Server() {
    manager->cancel_all();
    server->request_stop();
    thread.join();
  }

  net::ApiClient client() const { return net::ApiClient("127.0.0.1", server->port()); }

  std::unique_ptr<net::JobManager> manager;
  std::unique_ptr<net::HttpServer> server;
  std::thread thread;
};

/// When non-null, every emit() also records the row in the BENCH file.
benchio::BenchWriter* g_writer = nullptr;

/// "/v1/jobs" at 8 clients -> "v1_jobs_c8": a stable per-row key for the
/// bench_compare instance matching.
std::string instance_name(const std::string& endpoint, int clients) {
  std::string name;
  for (const char c : endpoint) {
    if (std::isalnum(static_cast<unsigned char>(c))) {
      name.push_back(c);
    } else if (!name.empty() && name.back() != '_') {
      name.push_back('_');
    }
  }
  return name + "_c" + std::to_string(clients);
}

void emit(const std::string& bench, const std::string& endpoint, int clients,
          std::size_t requests, double elapsed_seconds, Percentiles latency) {
  const double req_per_sec =
      elapsed_seconds > 0.0 ? static_cast<double>(requests) / elapsed_seconds : 0.0;
  JsonWriter w;
  w.begin_object();
  w.key("bench").value(bench);
  w.key("endpoint").value(endpoint);
  w.key("clients").value(clients);
  w.key("requests").value(static_cast<long>(requests));
  w.key("req_per_sec").value(req_per_sec);
  w.key("p50_ms").value(latency.p50);
  w.key("p95_ms").value(latency.p95);
  w.key("p99_ms").value(latency.p99);
  w.end_object();
  std::cout << w.str() << "\n";

  if (g_writer != nullptr) {
    benchio::JsonObject row;
    row.add("bench", bench)
        .add("instance", instance_name(endpoint, clients))
        .add("endpoint", endpoint)
        .add("clients", clients)
        .add("requests", static_cast<long long>(requests))
        .add("req_per_sec", req_per_sec)
        .add("p50_ms", latency.p50)
        .add("p95_ms", latency.p95)
        .add("p99_ms", latency.p99)
        .add("wall_ms", elapsed_seconds * 1000.0);
    g_writer->add_instance(row);
  }
}

/// `clients` threads issue `total / clients` requests each; returns false
/// when any request failed.
bool sweep_endpoint(const Server& server, const std::string& bench,
                    const std::string& target, int clients, std::size_t total) {
  const std::size_t per_client = total / static_cast<std::size_t>(clients);
  std::vector<std::vector<double>> latencies(static_cast<std::size_t>(clients));
  std::atomic<long> failures{0};
  std::vector<std::thread> threads;
  const Clock::time_point start = Clock::now();
  for (int c = 0; c < clients; ++c) {
    threads.emplace_back([&, c] {
      net::ApiClient client = server.client();
      auto& mine = latencies[static_cast<std::size_t>(c)];
      mine.reserve(per_client);
      for (std::size_t i = 0; i < per_client; ++i) {
        const Clock::time_point t0 = Clock::now();
        try {
          if (client.get(target).status != 200) failures.fetch_add(1);
        } catch (const Error&) {
          failures.fetch_add(1);
        }
        mine.push_back(std::chrono::duration<double, std::milli>(Clock::now() - t0).count());
      }
    });
  }
  for (std::thread& thread : threads) thread.join();
  const double elapsed = std::chrono::duration<double>(Clock::now() - start).count();

  std::vector<double> all;
  for (const auto& mine : latencies) all.insert(all.end(), mine.begin(), mine.end());
  emit(bench, target, clients, all.size(), elapsed, percentiles_ms(all));
  if (failures.load() != 0) {
    std::cerr << "FAIL: " << failures.load() << " request(s) failed on " << target
              << " at " << clients << " clients\n";
    return false;
  }
  return true;
}

/// Submit + watch-to-terminal round trips; cache-hot after the first job.
bool sweep_jobs(const Server& server, int clients, std::size_t total) {
  // Warm the result cache so the sweep measures the HTTP + queue + event
  // path rather than synthesis itself.
  {
    net::ApiClient client = server.client();
    const net::ClientResponse response =
        client.post("/v1/jobs", "{\"assay\":\"pcr\",\"asap\":true,\"grid\":10}");
    if (response.status != 202) {
      std::cerr << "FAIL: warm-up submit answered " << response.status << "\n";
      return false;
    }
    const std::uint64_t id = static_cast<std::uint64_t>(
        JsonValue::parse(response.body).at("id").as_int());
    client.watch(id, [](const std::string&, std::uint64_t, const std::string&) {
      return true;
    });
  }

  const std::size_t per_client = total / static_cast<std::size_t>(clients);
  std::vector<std::vector<double>> latencies(static_cast<std::size_t>(clients));
  std::atomic<long> failures{0};
  std::vector<std::thread> threads;
  const Clock::time_point start = Clock::now();
  for (int c = 0; c < clients; ++c) {
    threads.emplace_back([&, c] {
      net::ApiClient client = server.client();
      auto& mine = latencies[static_cast<std::size_t>(c)];
      for (std::size_t i = 0; i < per_client; ++i) {
        const Clock::time_point t0 = Clock::now();
        try {
          const net::ClientResponse response =
              client.post("/v1/jobs", "{\"assay\":\"pcr\",\"asap\":true,\"grid\":10}");
          if (response.status != 202) {
            failures.fetch_add(1);
          } else {
            const std::uint64_t id = static_cast<std::uint64_t>(
                JsonValue::parse(response.body).at("id").as_int());
            bool done = false;
            client.watch(id, [&](const std::string& event, std::uint64_t,
                                 const std::string&) {
              if (event == "done") done = true;
              return true;
            });
            if (!done) failures.fetch_add(1);
          }
        } catch (const Error&) {
          failures.fetch_add(1);
        }
        mine.push_back(std::chrono::duration<double, std::milli>(Clock::now() - t0).count());
      }
    });
  }
  for (std::thread& thread : threads) thread.join();
  const double elapsed = std::chrono::duration<double>(Clock::now() - start).count();

  std::vector<double> all;
  for (const auto& mine : latencies) all.insert(all.end(), mine.begin(), mine.end());
  emit("server_jobs", "submit+watch", clients, all.size(), elapsed, percentiles_ms(all));
  if (failures.load() != 0) {
    std::cerr << "FAIL: " << failures.load() << " job round trip(s) failed at "
              << clients << " clients\n";
    return false;
  }
  return true;
}

/// Floods a one-worker server with distinct jobs under a tight interactive
/// deadline; reports accepted/shed counts and asserts both happened.
bool demonstrate_shedding() {
  net::JobManager::Config manager_config;
  manager_config.service.workers = 1;
  manager_config.service.cache_capacity = 0;  // every job does real work
  net::AdmissionConfig admission;
  admission.deadline_seconds[0] = 0.25;  // interactive: quarter second
  admission.min_samples = 2;
  Server server(std::move(manager_config), admission);

  constexpr int kClients = 8;
  constexpr int kPerClient = 25;
  std::atomic<int> accepted{0};
  std::atomic<int> shed{0};
  std::atomic<int> queue_full{0};
  std::atomic<int> retry_after_max{0};
  std::atomic<int> seed{1};
  std::vector<std::thread> threads;
  for (int c = 0; c < kClients; ++c) {
    threads.emplace_back([&] {
      net::ApiClient client = server.client();
      for (int i = 0; i < kPerClient; ++i) {
        // Distinct seeds defeat the cache key so the queue really deepens.
        const std::string spec = "{\"assay\":\"pcr\",\"asap\":true,\"grid\":10,\"seed\":" +
                                 std::to_string(seed.fetch_add(1)) + "}";
        try {
          const net::ClientResponse response = client.post("/v1/jobs", spec);
          if (response.status == 202) {
            accepted.fetch_add(1);
          } else if (response.status == 429) {
            shed.fetch_add(1);
            if (const std::string* retry =
                    net::find_header(response.headers, "Retry-After")) {
              int current = retry_after_max.load();
              const int value = static_cast<int>(std::strtol(retry->c_str(), nullptr, 10));
              while (value > current &&
                     !retry_after_max.compare_exchange_weak(current, value)) {
              }
            }
          } else if (response.status == 503) {
            queue_full.fetch_add(1);
          }
        } catch (const Error&) {
        }
      }
    });
  }
  for (std::thread& thread : threads) thread.join();

  JsonWriter w;
  w.begin_object();
  w.key("bench").value("server_admission");
  w.key("submitted").value(kClients * kPerClient);
  w.key("accepted").value(accepted.load());
  w.key("shed_429").value(shed.load());
  w.key("queue_full_503").value(queue_full.load());
  w.key("retry_after_max_s").value(retry_after_max.load());
  w.end_object();
  std::cout << w.str() << "\n";

  if (g_writer != nullptr) {
    benchio::JsonObject row;
    row.add("bench", "server_admission")
        .add("instance", "admission_flood")
        .add("submitted", kClients * kPerClient)
        .add("accepted", accepted.load())
        .add("shed_429", shed.load())
        .add("queue_full_503", queue_full.load());
    g_writer->add_instance(row);
  }

  if (accepted.load() == 0 || shed.load() == 0) {
    std::cerr << "FAIL: admission control should accept early jobs and shed "
                 "under load (accepted="
              << accepted.load() << ", shed=" << shed.load() << ")\n";
    return false;
  }
  return true;
}

}  // namespace

int main(int argc, char** argv) {
  std::string out_path;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--out" && i + 1 < argc) {
      out_path = argv[++i];
    } else {
      std::cerr << "usage: bench_server [--out PATH]\n";
      return 2;
    }
  }

  benchio::BenchWriter writer("server");
  writer.config()
      .add("workers", static_cast<long long>(std::thread::hardware_concurrency()))
      .add("transport", "loopback");
  if (!out_path.empty()) g_writer = &writer;

  bool ok = true;

  {
    Server server;
    for (const int clients : {1, 8, 64}) {
      ok = sweep_endpoint(server, "server_http", "/healthz", clients, 2000) && ok;
    }
    ok = sweep_endpoint(server, "server_http", "/v1/jobs", 8, 1000) && ok;
    for (const int clients : {1, 8}) {
      ok = sweep_jobs(server, clients, 64) && ok;
    }
  }

  ok = demonstrate_shedding() && ok;

  if (!out_path.empty()) {
    if (writer.write(out_path)) {
      std::cout << "bench file written to " << out_path << "\n";
    } else {
      std::cerr << "FAIL: cannot write " << out_path << "\n";
      ok = false;
    }
  }

  std::cout << (ok ? "bench_server: OK" : "bench_server: FAILED") << "\n";
  return ok ? 0 : 1;
}
