// Solver micro-benchmark: a fixed family of branch-and-bound-heavy MILPs,
// one machine-readable JSON line per instance (wall clock, nodes, LP pivot
// work) so the perf trajectory of the `fsyn::ilp` core can be tracked in
// BENCH_*.json files and CI artifacts.
//
// The instance families mirror the shapes the synthesis engine produces:
// knapsacks (dense single rows), min-max assignment (the mapper's
// minimize-w pattern), big-M disjunctive non-overlap (Eq. 3-8), and
// time-indexed scheduling (the ILP scheduler's choose-one + capacity rows).
#include <chrono>
#include <cstdlib>
#include <cstring>
#include <iostream>
#include <string>

#include "bench_json.hpp"
#include "ilp/branch_and_bound.hpp"
#include "ilp/model.hpp"
#include "util/rng.hpp"

using namespace fsyn;
using namespace fsyn::ilp;

namespace {

Model knapsack(int n, std::uint64_t seed) {
  Rng rng(seed);
  Model m;
  LinearExpr weight, value;
  int total = 0;
  for (int j = 0; j < n; ++j) {
    const int w = rng.next_int(3, 19);
    total += w;
    weight.add_term(m.add_binary(), w);
    value.add_term(VarId{j}, rng.next_int(2, 23));
  }
  m.add_constraint(weight, Relation::kLessEqual, total / 2);
  m.set_objective(value, Sense::kMaximize);
  return m;
}

/// The mapping model's shape: assign items to slots minimizing the maximum
/// slot load (selection binaries, choose-one equalities, load rows <= w).
Model minmax_assign(int items, int slots, std::uint64_t seed) {
  Rng rng(seed);
  Model m;
  const VarId w = m.add_continuous(0.0, kInfinity, "w");
  std::vector<std::vector<VarId>> assign(static_cast<std::size_t>(items));
  std::vector<int> load(static_cast<std::size_t>(items));
  for (int i = 0; i < items; ++i) {
    load[static_cast<std::size_t>(i)] = rng.next_int(10, 60);
    LinearExpr choose_one;
    for (int s = 0; s < slots; ++s) {
      assign[static_cast<std::size_t>(i)].push_back(m.add_binary());
      choose_one.add_term(assign[static_cast<std::size_t>(i)].back(), 1.0);
    }
    m.add_constraint(choose_one, Relation::kEqual, 1.0);
  }
  for (int s = 0; s < slots; ++s) {
    LinearExpr total;
    for (int i = 0; i < items; ++i) {
      total.add_term(assign[static_cast<std::size_t>(i)][static_cast<std::size_t>(s)],
                     load[static_cast<std::size_t>(i)]);
    }
    total.add_term(w, -1.0);
    m.add_constraint(total, Relation::kLessEqual, 0.0);
  }
  m.set_objective(1.0 * w, Sense::kMinimize);
  return m;
}

/// k unit-width devices on a line segment with pairwise big-M non-overlap
/// (the paper's Eq. 3-8 disjunction); minimize the weighted rightmost edge.
Model bigm_intervals(int k, int span, std::uint64_t seed) {
  Rng rng(seed);
  Model m;
  const double big_m = span + 2.0;
  std::vector<VarId> pos;
  std::vector<int> width(static_cast<std::size_t>(k));
  for (int i = 0; i < k; ++i) {
    width[static_cast<std::size_t>(i)] = rng.next_int(1, 3);
    pos.push_back(m.add_integer(0, span, "p" + std::to_string(i)));
  }
  for (int a = 0; a < k; ++a) {
    for (int b = a + 1; b < k; ++b) {
      const VarId c1 = m.add_binary();
      const VarId c2 = m.add_binary();
      // pos_a + width_a <= pos_b + M c1;  pos_b + width_b <= pos_a + M c2.
      m.add_constraint(1.0 * pos[static_cast<std::size_t>(a)] +
                           (-1.0) * pos[static_cast<std::size_t>(b)] + (-big_m) * c1,
                       Relation::kLessEqual, -width[static_cast<std::size_t>(a)]);
      m.add_constraint(1.0 * pos[static_cast<std::size_t>(b)] +
                           (-1.0) * pos[static_cast<std::size_t>(a)] + (-big_m) * c2,
                       Relation::kLessEqual, -width[static_cast<std::size_t>(b)]);
      m.add_constraint(1.0 * c1 + 1.0 * c2, Relation::kEqual, 1.0);
    }
  }
  LinearExpr obj;
  for (int i = 0; i < k; ++i) obj.add_term(pos[static_cast<std::size_t>(i)], i + 1);
  m.set_objective(obj, Sense::kMinimize);
  return m;
}

/// Time-indexed scheduling: x[i][t] start binaries, precedence chains and a
/// machine-capacity row per time step (the ILP scheduler's structure).
Model time_indexed(int ops, int horizon, int capacity, std::uint64_t seed) {
  Rng rng(seed);
  Model m;
  std::vector<std::vector<VarId>> starts(static_cast<std::size_t>(ops));
  std::vector<int> duration(static_cast<std::size_t>(ops));
  for (int i = 0; i < ops; ++i) {
    duration[static_cast<std::size_t>(i)] = rng.next_int(1, 3);
    LinearExpr choose_one;
    for (int t = 0; t + duration[static_cast<std::size_t>(i)] <= horizon; ++t) {
      starts[static_cast<std::size_t>(i)].push_back(m.add_binary());
      choose_one.add_term(starts[static_cast<std::size_t>(i)].back(), 1.0);
    }
    m.add_constraint(choose_one, Relation::kEqual, 1.0);
  }
  auto start_expr = [&](int i) {
    LinearExpr e;
    const auto& vars = starts[static_cast<std::size_t>(i)];
    for (std::size_t t = 0; t < vars.size(); ++t) e.add_term(vars[t], static_cast<double>(t));
    return e;
  };
  // Precedence along a random forest: op i depends on a random earlier op.
  for (int i = 1; i < ops; ++i) {
    const int p = rng.next_int(0, i - 1);
    LinearExpr e = start_expr(i);
    const LinearExpr pe = start_expr(p);
    for (const auto& term : pe.terms()) e.add_term(term.var, -term.coeff);
    m.add_constraint(e, Relation::kGreaterEqual, duration[static_cast<std::size_t>(p)]);
  }
  // Capacity rows.
  for (int t = 0; t < horizon; ++t) {
    LinearExpr running;
    bool any = false;
    for (int i = 0; i < ops; ++i) {
      const auto& vars = starts[static_cast<std::size_t>(i)];
      for (int s = std::max(0, t - duration[static_cast<std::size_t>(i)] + 1);
           s <= t && s < static_cast<int>(vars.size()); ++s) {
        running.add_term(vars[static_cast<std::size_t>(s)], 1.0);
        any = true;
      }
    }
    if (any) m.add_constraint(running, Relation::kLessEqual, capacity);
  }
  // Minimize the weighted sum of start times (drives many B&B nodes).
  LinearExpr obj;
  for (int i = 0; i < ops; ++i) {
    const LinearExpr e = start_expr(i);
    for (const auto& term : e.terms()) obj.add_term(term.var, term.coeff * (1.0 + i % 3));
  }
  m.set_objective(obj, Sense::kMinimize);
  return m;
}

const char* status_name(MilpStatus status) {
  switch (status) {
    case MilpStatus::kOptimal: return "optimal";
    case MilpStatus::kFeasible: return "feasible";
    case MilpStatus::kInfeasible: return "infeasible";
    case MilpStatus::kUnbounded: return "unbounded";
    case MilpStatus::kLimit: return "limit";
  }
  return "?";
}

void run(const std::string& name, const Model& model, const MilpOptions& options,
         benchio::BenchWriter& writer) {
  const auto start = std::chrono::steady_clock::now();
  const MilpResult result = solve_milp(model, options);
  const double wall_ms =
      std::chrono::duration<double, std::milli>(std::chrono::steady_clock::now() - start).count();
  // Per-pivot cost: the basis/pricing work one simplex iteration buys.
  const double ms_per_1k_iterations =
      result.lp_iterations > 0 ? wall_ms * 1000.0 / static_cast<double>(result.lp_iterations)
                               : 0.0;

  benchio::JsonObject row;
  row.add("bench", "ilp_solver")
      .add("instance", name)
      .add("vars", model.variable_count())
      .add("rows", model.constraint_count())
      .add("nnz", model.nonzero_count())
      .add("status", status_name(result.status))
      .add("objective", result.objective)
      .add("nodes", static_cast<long long>(result.nodes))
      .add("lp_iterations", static_cast<long long>(result.lp_iterations))
      .add("cuts", static_cast<long long>(result.cuts.gomory_generated +
                                          result.cuts.cover_generated))
      .add("cuts_retained", static_cast<long long>(result.cuts.retained))
      .add("cut_rounds", static_cast<long long>(result.cuts.rounds))
      .add("arena_bytes", static_cast<long long>(result.arena_bytes))
      .add("ms_per_1k_iterations", ms_per_1k_iterations)
      .add("primal_pivots", static_cast<long long>(result.lp.primal_pivots))
      .add("dual_pivots", static_cast<long long>(result.lp.dual_pivots))
      .add("bound_flips", static_cast<long long>(result.lp.bound_flips))
      .add("refactorizations", static_cast<long long>(result.lp.refactorizations))
      .add("warm_solves", static_cast<long long>(result.lp.warm_solves))
      .add("cold_solves", static_cast<long long>(result.lp.cold_solves))
      .add("lu_refactorizations", static_cast<long long>(result.lp.lu_refactorizations))
      .add("eta_pivots", static_cast<long long>(result.lp.eta_pivots))
      .add("fill_in_ratio", result.lp.fill_in_ratio())
      .add("devex_resets", static_cast<long long>(result.lp.devex_resets))
      .add("threads", result.threads)
      .add("steals", static_cast<long long>(result.steals))
      .add("idle_seconds", result.idle_seconds)
      .add("parallel_efficiency", result.parallel_efficiency)
      .add("wall_ms", wall_ms);
  std::cout << row.str() << "\n";
  writer.add_instance(row);
}

}  // namespace

int main(int argc, char** argv) {
  // `--threads N`: 0 (default) runs the serial search; N >= 1 runs the
  // parallel tree search with N workers.  CI runs both, in both basis
  // modes, and diffs objectives (they must agree exactly).
  MilpOptions options;
  options.time_limit_seconds = 60.0;
  std::string out_path;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--threads") == 0 && i + 1 < argc) {
      options.threads = std::atoi(argv[++i]);
    } else if (std::strcmp(argv[i], "--basis") == 0 && i + 1 < argc) {
      if (!basis_kind_from_string(argv[++i], &options.lp.basis)) {
        std::cerr << "unknown basis '" << argv[i] << "' (dense|sparse)\n";
        return 2;
      }
    } else if (std::strcmp(argv[i], "--pricing") == 0 && i + 1 < argc) {
      if (!pricing_rule_from_string(argv[++i], &options.lp.pricing)) {
        std::cerr << "unknown pricing '" << argv[i] << "' (dantzig|devex)\n";
        return 2;
      }
    } else if (std::strcmp(argv[i], "--lp-cuts") == 0 && i + 1 < argc) {
      ++i;
      if (std::strcmp(argv[i], "on") == 0) {
        options.cut_options.enabled = true;
      } else if (std::strcmp(argv[i], "off") == 0) {
        options.cut_options.enabled = false;
      } else {
        std::cerr << "unknown --lp-cuts '" << argv[i] << "' (on|off)\n";
        return 2;
      }
    } else if (std::strcmp(argv[i], "--out") == 0 && i + 1 < argc) {
      out_path = argv[++i];
    } else {
      std::cerr << "usage: bench_ilp_solver [--threads N] [--basis dense|sparse]\n"
                << "                        [--pricing dantzig|devex] [--lp-cuts on|off]\n"
                << "                        [--out BENCH.json]\n";
      return 2;
    }
  }

  benchio::BenchWriter writer("ilp");
  writer.config()
      .add("threads", options.threads)
      .add("basis", to_string(options.lp.basis))
      .add("pricing", to_string(options.lp.pricing))
      .add("lp_cuts", options.cut_options.enabled ? "on" : "off");

  run("knapsack_14", knapsack(14, 11), options, writer);
  run("knapsack_18", knapsack(18, 23), options, writer);
  run("minmax_assign_8x3", minmax_assign(8, 3, 5), options, writer);
  run("minmax_assign_10x4", minmax_assign(10, 4, 7), options, writer);
  run("bigm_intervals_5", bigm_intervals(5, 9, 3), options, writer);
  run("bigm_intervals_6", bigm_intervals(6, 11, 9), options, writer);
  run("time_indexed_8x14", time_indexed(8, 14, 2, 17), options, writer);
  run("time_indexed_10x18", time_indexed(10, 18, 2, 29), options, writer);

  if (!out_path.empty() && !writer.write(out_path)) {
    std::cerr << "failed to write " << out_path << "\n";
    return 1;
  }
  return 0;
}
