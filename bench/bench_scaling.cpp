// Performance benchmarks (google-benchmark): scaling of the synthesis
// pipeline and its substrates with assay size and matrix size.
//
// The paper reports program runtimes of 0.8 s (PCR) to 489 s (exponential
// dilution, Gurobi).  This reproduction's heuristic path runs the largest
// case in well under a second per chip size probe; these benchmarks keep
// that property observable.
#include <benchmark/benchmark.h>

#include "assay/benchmarks.hpp"
#include "ilp/branch_and_bound.hpp"
#include "util/rng.hpp"
#include "route/router.hpp"
#include "sched/list_scheduler.hpp"
#include "synth/heuristic_mapper.hpp"
#include "synth/synthesis.hpp"

using namespace fsyn;

namespace {

const assay::SequencingGraph& benchmark_graph(int index) {
  static const std::vector<assay::SequencingGraph> graphs = [] {
    std::vector<assay::SequencingGraph> out;
    for (const auto& name : assay::benchmark_names()) out.push_back(assay::make_benchmark(name));
    return out;
  }();
  return graphs[static_cast<std::size_t>(index)];
}

void BM_Scheduling(benchmark::State& state) {
  const auto& g = benchmark_graph(static_cast<int>(state.range(0)));
  const auto policy = sched::make_policy(g, 1);
  for (auto _ : state) {
    benchmark::DoNotOptimize(sched::schedule_with_policy(g, policy));
  }
  state.SetLabel(g.name());
}
BENCHMARK(BM_Scheduling)->DenseRange(0, 3);

void BM_HeuristicMapping(benchmark::State& state) {
  const auto& g = benchmark_graph(static_cast<int>(state.range(0)));
  const auto schedule = sched::schedule_with_policy(g, sched::make_policy(g, 1));
  const int side = arch::Architecture::sized_for(g, schedule, 1.0).width();
  const auto problem = synth::MappingProblem::build(g, schedule, arch::Architecture(side, side));
  synth::HeuristicOptions options;
  options.sa_iterations = 4000;
  for (auto _ : state) {
    benchmark::DoNotOptimize(synth::map_heuristic(problem, options));
  }
  state.SetLabel(g.name() + " on " + std::to_string(side) + "x" + std::to_string(side));
}
BENCHMARK(BM_HeuristicMapping)->DenseRange(0, 3)->Unit(benchmark::kMillisecond);

void BM_Routing(benchmark::State& state) {
  const auto& g = benchmark_graph(static_cast<int>(state.range(0)));
  const auto schedule = sched::schedule_with_policy(g, sched::make_policy(g, 1));
  const int side = arch::Architecture::sized_for(g, schedule, 1.0).width();
  const auto problem = synth::MappingProblem::build(g, schedule, arch::Architecture(side, side));
  const auto mapping = synth::map_heuristic(problem);
  if (!mapping.has_value()) {
    state.SkipWithError("mapping failed");
    return;
  }
  for (auto _ : state) {
    benchmark::DoNotOptimize(route::route_all(problem, mapping->placement));
  }
  state.SetLabel(g.name());
}
BENCHMARK(BM_Routing)->DenseRange(0, 3)->Unit(benchmark::kMillisecond);

void BM_FullSynthesis(benchmark::State& state) {
  const auto& g = benchmark_graph(static_cast<int>(state.range(0)));
  const auto schedule = sched::schedule_with_policy(g, sched::make_policy(g, 1));
  synth::SynthesisOptions options;
  options.heuristic.sa_iterations = 4000;
  options.chip_sweep = 1;
  for (auto _ : state) {
    benchmark::DoNotOptimize(synth::synthesize(g, schedule, options));
  }
  state.SetLabel(g.name());
}
BENCHMARK(BM_FullSynthesis)->DenseRange(0, 3)->Unit(benchmark::kMillisecond);

void BM_SimplexLp(benchmark::State& state) {
  // Random dense LP of the given size (feasible by construction).
  const int n = static_cast<int>(state.range(0));
  Rng rng(99);
  ilp::Model model;
  std::vector<ilp::VarId> vars;
  for (int j = 0; j < n; ++j) vars.push_back(model.add_continuous(0, 10));
  for (int i = 0; i < n; ++i) {
    ilp::LinearExpr e;
    for (int j = 0; j < n; ++j) e.add_term(vars[static_cast<std::size_t>(j)], rng.next_int(0, 3));
    model.add_constraint(e, ilp::Relation::kLessEqual, 5.0 * n);
  }
  ilp::LinearExpr obj;
  for (int j = 0; j < n; ++j) obj.add_term(vars[static_cast<std::size_t>(j)], rng.next_int(1, 5));
  model.set_objective(obj, ilp::Sense::kMaximize);
  for (auto _ : state) {
    benchmark::DoNotOptimize(ilp::solve_lp(model));
  }
}
BENCHMARK(BM_SimplexLp)->Arg(10)->Arg(30)->Arg(60);

void BM_MilpKnapsack(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  Rng rng(7);
  ilp::Model model;
  ilp::LinearExpr weight, value;
  for (int j = 0; j < n; ++j) {
    const auto x = model.add_binary();
    weight.add_term(x, rng.next_int(1, 9));
    value.add_term(x, rng.next_int(1, 9));
  }
  model.add_constraint(weight, ilp::Relation::kLessEqual, 2.5 * n);
  model.set_objective(value, ilp::Sense::kMaximize);
  for (auto _ : state) {
    benchmark::DoNotOptimize(ilp::solve_milp(model));
  }
}
BENCHMARK(BM_MilpKnapsack)->Arg(10)->Arg(16)->Arg(22);

}  // namespace

BENCHMARK_MAIN();
