// Tests for the traditional-design baseline: optimal binding, valve
// inventory, storage sizing and the vs_tmax values of Table 1.
#include <gtest/gtest.h>

#include "assay/benchmarks.hpp"
#include "baseline/traditional.hpp"
#include "sched/list_scheduler.hpp"

namespace fsyn::baseline {
namespace {

using assay::OpKind;

TEST(ValveCostModel, MixerValvesMatchFig2) {
  const ValveCostModel model;
  // Fig. 2's smallest ring mixer has 9 valves (3 pump + 6 control).
  EXPECT_EQ(model.mixer_valves(4), 9);
  EXPECT_EQ(model.mixer_valves(6), 10);
  EXPECT_EQ(model.mixer_valves(8), 11);
  EXPECT_EQ(model.mixer_valves(10), 12);
}

TEST(Traditional, PcrP1MatchesTable1) {
  const auto g = assay::make_pcr();
  const auto policy = sched::make_policy(g, 0);
  const auto schedule = sched::schedule_with_policy(g, policy);
  const TraditionalDesign design = build_traditional(g, policy, schedule);

  // Table 1 row 1: #m = 1-0-4-2, vs_tmax = 160 (4 ops x 40 on the size-8
  // mixer).
  EXPECT_EQ(design.binding_string({4, 6, 8, 10}), "1-0-4-2");
  EXPECT_EQ(design.max_ops_on_one_mixer, 4);
  EXPECT_EQ(design.max_valve_actuations, 160);
  EXPECT_EQ(design.mixers.size(), 3u);
  EXPECT_EQ(design.detectors, 0);
}

TEST(Traditional, PcrPoliciesReduceVsTmax) {
  const auto g = assay::make_pcr();
  // Table 1: vs_tmax = 160, 80, 80 for p1, p2, p3.
  const int expected[] = {160, 80, 80};
  for (int p = 0; p < 3; ++p) {
    const auto policy = sched::make_policy(g, p);
    const auto schedule = sched::schedule_with_policy(g, policy);
    const TraditionalDesign design = build_traditional(g, policy, schedule);
    EXPECT_EQ(design.max_valve_actuations, expected[p]) << "policy p" << (p + 1);
  }
}

TEST(Traditional, VsTmaxForAllBenchmarksP1) {
  // Table 1 p1 column: PCR 160, Mixing Tree 280, Interpolating 360 (p1 has
  // one increment), Exponential 320 (p1 has three increments).
  struct Spec {
    const char* name;
    int increments;
    int vs_tmax;
  };
  const Spec specs[] = {{"pcr", 0, 160},
                        {"mixing_tree", 0, 280},
                        {"interpolating_dilution", 1, 360},
                        {"exponential_dilution", 3, 320}};
  for (const Spec& spec : specs) {
    const auto g = assay::make_benchmark(spec.name);
    const auto policy = sched::make_policy(g, spec.increments);
    const auto schedule = sched::schedule_with_policy(g, policy);
    EXPECT_EQ(build_traditional(g, policy, schedule).max_valve_actuations, spec.vs_tmax)
        << spec.name;
  }
}

TEST(Traditional, BindingIsBalanced) {
  // Optimal binding spreads ops of one size class as evenly as possible:
  // loads differ by at most 1.
  const auto g = assay::make_exponential_dilution();
  const auto policy = sched::make_policy(g, 5);
  const auto schedule = sched::schedule_with_policy(g, policy);
  const TraditionalDesign design = build_traditional(g, policy, schedule);
  for (int volume : {4, 6, 8, 10}) {
    int lo = std::numeric_limits<int>::max(), hi = 0;
    for (const MixerInstance& mixer : design.mixers) {
      if (mixer.volume != volume) continue;
      lo = std::min(lo, static_cast<int>(mixer.bound_ops.size()));
      hi = std::max(hi, static_cast<int>(mixer.bound_ops.size()));
    }
    if (hi > 0) EXPECT_LE(hi - lo, 1) << "volume " << volume;
  }
}

TEST(Traditional, EveryMixOpBoundExactlyOnce) {
  const auto g = assay::make_mixing_tree();
  const auto policy = sched::make_policy(g, 2);
  const auto schedule = sched::schedule_with_policy(g, policy);
  const TraditionalDesign design = build_traditional(g, policy, schedule);
  std::vector<int> bound(static_cast<std::size_t>(g.size()), 0);
  for (const MixerInstance& mixer : design.mixers) {
    for (const assay::OpId op : mixer.bound_ops) {
      EXPECT_EQ(g.op(op).volume, mixer.volume);
      ++bound[static_cast<std::size_t>(op.index)];
    }
  }
  for (const assay::Operation& op : g.operations()) {
    EXPECT_EQ(bound[static_cast<std::size_t>(op.id.index)], op.kind == OpKind::kMix ? 1 : 0)
        << op.name;
  }
}

TEST(Traditional, MorePoliciesMoreMixerValves) {
  // The paper: introducing more mixers enlarges the number of (mixer)
  // valves.  The dedicated storage may shrink at the same time — more
  // mixers mean less waiting — so only the mixer component is monotone.
  for (const auto& name : assay::benchmark_names()) {
    const auto g = assay::make_benchmark(name);
    int previous = 0;
    for (int p = 0; p < 3; ++p) {
      const auto policy = sched::make_policy(g, p);
      const auto schedule = sched::schedule_with_policy(g, policy);
      const TraditionalDesign design = build_traditional(g, policy, schedule);
      EXPECT_GT(design.total_valves, 0);
      int mixer_valves = 0;
      for (const MixerInstance& mixer : design.mixers) {
        mixer_valves += design.model.mixer_valves(mixer.volume);
      }
      EXPECT_GT(mixer_valves, previous) << name;
      previous = mixer_valves;
    }
  }
}

TEST(Traditional, PeakStorageDemand) {
  const auto g = assay::make_pcr();
  const auto schedule = sched::schedule_asap(g);
  // ASAP PCR: o2's product waits 15..18 for o5; o6's waits 15..25 for o7;
  // o5's arrives at 25 exactly when o7 starts.  Peak concurrent = 2
  // (o2-product and o6-product during 15..18).
  EXPECT_EQ(peak_storage_demand(g, schedule), 2);
}

TEST(Traditional, StorageSizedByPolicySchedule) {
  // Tight policies serialize ops, so more products wait simultaneously.
  const auto g = assay::make_interpolating_dilution();
  const auto tight = sched::schedule_with_policy(g, sched::make_policy(g, 1));
  const auto asap = sched::schedule_asap(g);
  EXPECT_GE(peak_storage_demand(g, tight), peak_storage_demand(g, asap));
}

}  // namespace
}  // namespace fsyn::baseline
