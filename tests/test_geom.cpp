// Unit and property tests for geometry: points, rects, rings, grids.
#include <gtest/gtest.h>

#include <set>

#include "geom/grid.hpp"
#include "geom/point.hpp"
#include "geom/rect.hpp"
#include "util/rng.hpp"

namespace fsyn {
namespace {

TEST(Point, ArithmeticAndDistance) {
  const Point a{1, 2}, b{4, -2};
  EXPECT_EQ(a + b, (Point{5, 0}));
  EXPECT_EQ(b - a, (Point{3, -4}));
  EXPECT_EQ(manhattan_distance(a, b), 7);
  EXPECT_EQ(manhattan_distance(a, a), 0);
}

TEST(Rect, AccessorsAndContainment) {
  const Rect r{2, 3, 4, 2};  // covers x in [2,6), y in [3,5)
  EXPECT_EQ(r.left(), 2);
  EXPECT_EQ(r.right(), 6);
  EXPECT_EQ(r.bottom(), 3);
  EXPECT_EQ(r.top(), 5);
  EXPECT_EQ(r.area(), 8);
  EXPECT_TRUE(r.contains(Point{2, 3}));
  EXPECT_TRUE(r.contains(Point{5, 4}));
  EXPECT_FALSE(r.contains(Point{6, 4}));
  EXPECT_FALSE(r.contains(Point{2, 5}));
}

TEST(Rect, OverlapIsSymmetricAndEdgeTouchingDoesNotOverlap) {
  const Rect a{0, 0, 2, 2}, b{2, 0, 2, 2}, c{1, 1, 2, 2};
  EXPECT_FALSE(a.overlaps(b));
  EXPECT_FALSE(b.overlaps(a));
  EXPECT_TRUE(a.overlaps(c));
  EXPECT_TRUE(c.overlaps(a));
}

TEST(Rect, IntersectionMatchesOverlap) {
  const Rect a{0, 0, 3, 3}, b{2, 2, 3, 3};
  const Rect i = a.intersection(b);
  EXPECT_EQ(i, (Rect{2, 2, 1, 1}));
  EXPECT_TRUE(a.intersection(Rect{5, 5, 1, 1}).empty());
}

TEST(Rect, ChebyshevGap) {
  const Rect a{0, 0, 2, 2};
  EXPECT_EQ(a.chebyshev_gap(Rect{2, 0, 2, 2}), 0);  // touching
  EXPECT_EQ(a.chebyshev_gap(Rect{4, 0, 2, 2}), 2);
  EXPECT_EQ(a.chebyshev_gap(Rect{4, 4, 2, 2}), 2);
  EXPECT_EQ(a.chebyshev_gap(Rect{1, 1, 2, 2}), 0);  // overlapping
}

TEST(Rect, CellsEnumeratesArea) {
  const Rect r{1, 1, 3, 2};
  const auto cells = r.cells();
  EXPECT_EQ(static_cast<int>(cells.size()), r.area());
  const std::set<Point> unique(cells.begin(), cells.end());
  EXPECT_EQ(unique.size(), cells.size());
  for (const Point& p : cells) EXPECT_TRUE(r.contains(p));
}

// Property: a w x h ring has exactly 2(w+h)-4 distinct cells, all on the
// boundary, and consecutive ring cells are orthogonal neighbours (the
// circulation flow of a dynamic mixer must be a connected cycle).
class RingProperty : public ::testing::TestWithParam<std::pair<int, int>> {};

TEST_P(RingProperty, RingIsAConnectedBoundaryCycle) {
  const auto [w, h] = GetParam();
  const Rect r{3, 5, w, h};
  const auto ring = r.ring_cells();
  ASSERT_EQ(static_cast<int>(ring.size()), 2 * (w + h) - 4);
  const std::set<Point> unique(ring.begin(), ring.end());
  EXPECT_EQ(unique.size(), ring.size());
  for (const Point& p : ring) {
    EXPECT_TRUE(r.contains(p));
    const bool on_boundary = p.x == r.left() || p.x == r.right() - 1 ||
                             p.y == r.bottom() || p.y == r.top() - 1;
    EXPECT_TRUE(on_boundary);
  }
  for (std::size_t i = 0; i < ring.size(); ++i) {
    const Point& a = ring[i];
    const Point& b = ring[(i + 1) % ring.size()];
    EXPECT_EQ(manhattan_distance(a, b), 1)
        << "ring cells " << i << " and " << (i + 1) % ring.size() << " not adjacent";
  }
}

INSTANTIATE_TEST_SUITE_P(AllDeviceShapes, RingProperty,
                         ::testing::Values(std::pair{2, 2}, std::pair{2, 3}, std::pair{3, 2},
                                           std::pair{2, 4}, std::pair{4, 2}, std::pair{3, 3},
                                           std::pair{2, 5}, std::pair{5, 2}, std::pair{3, 4},
                                           std::pair{4, 3}, std::pair{4, 4}, std::pair{6, 5}));

TEST(Rect, DegenerateRingEqualsCells) {
  const Rect line{0, 0, 1, 4};
  EXPECT_EQ(line.ring_cells(), line.cells());
  const Rect row{2, 2, 5, 1};
  EXPECT_EQ(row.ring_cells(), row.cells());
}

TEST(Rect, InflatedGrowsEachSide) {
  const Rect r{2, 2, 2, 3};
  EXPECT_EQ(r.inflated(1), (Rect{1, 1, 4, 5}));
  EXPECT_EQ(r.inflated(0), r);
}

// Property: two rects overlap iff their intersection is non-empty, and the
// chebyshev gap is zero iff the 1-inflated rects overlap or they touch.
TEST(RectProperty, OverlapConsistentWithIntersection) {
  Rng rng(2015);
  for (int trial = 0; trial < 500; ++trial) {
    const Rect a{rng.next_int(-5, 5), rng.next_int(-5, 5), rng.next_int(1, 6), rng.next_int(1, 6)};
    const Rect b{rng.next_int(-5, 5), rng.next_int(-5, 5), rng.next_int(1, 6), rng.next_int(1, 6)};
    EXPECT_EQ(a.overlaps(b), !a.intersection(b).empty());
    EXPECT_EQ(a.overlaps(b), b.overlaps(a));
    if (a.overlaps(b)) {
      EXPECT_EQ(a.chebyshev_gap(b), 0);
      EXPECT_EQ(a.intersection(b).area(), b.intersection(a).area());
    }
  }
}

TEST(Grid, StoreAndRetrieve) {
  Grid<int> g(4, 3, -1);
  EXPECT_EQ(g.width(), 4);
  EXPECT_EQ(g.height(), 3);
  EXPECT_EQ(g.at(0, 0), -1);
  g.at(2, 1) = 42;
  EXPECT_EQ(g.at(Point{2, 1}), 42);
  EXPECT_EQ(g.bounds(), (Rect{0, 0, 4, 3}));
}

TEST(Grid, OutOfBoundsAccessThrows) {
  Grid<int> g(2, 2);
  EXPECT_THROW(g.at(2, 0), LogicError);
  EXPECT_THROW(g.at(-1, 0), LogicError);
  EXPECT_THROW(g.at(0, 2), LogicError);
  EXPECT_FALSE(g.in_bounds(Point{0, -1}));
}

TEST(Grid, ForEachVisitsEveryCellOnce) {
  Grid<int> g(3, 5, 0);
  int visits = 0;
  g.for_each([&](const Point& p, int) {
    EXPECT_TRUE(g.in_bounds(p));
    ++visits;
  });
  EXPECT_EQ(visits, 15);
}

TEST(Grid, OrthogonalNeighbours) {
  const auto n = orthogonal_neighbours(Point{1, 1});
  const std::set<Point> expected{{2, 1}, {0, 1}, {1, 2}, {1, 0}};
  EXPECT_EQ(std::set<Point>(n.begin(), n.end()), expected);
}

}  // namespace
}  // namespace fsyn
