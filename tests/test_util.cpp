// Unit tests for the util module: errors, strings, logging, tables, RNG.
#include <gtest/gtest.h>

#include <algorithm>
#include <set>

#include "util/error.hpp"
#include "util/json.hpp"
#include "util/logging.hpp"
#include "util/rng.hpp"
#include "util/strings.hpp"
#include "util/table.hpp"

namespace fsyn {
namespace {

TEST(Error, RequireThrowsLogicErrorWithLocation) {
  try {
    require(false, "boom");
    FAIL() << "require(false) must throw";
  } catch (const LogicError& e) {
    EXPECT_NE(std::string(e.what()).find("boom"), std::string::npos);
    EXPECT_NE(std::string(e.what()).find("test_util.cpp"), std::string::npos);
  }
}

TEST(Error, RequireTruePasses) { EXPECT_NO_THROW(require(true, "fine")); }

TEST(Error, CheckInputThrowsError) {
  EXPECT_THROW(check_input(false, "bad"), Error);
  EXPECT_NO_THROW(check_input(true, "good"));
}

TEST(Strings, TrimStripsBothEnds) {
  EXPECT_EQ(trim("  abc \t\n"), "abc");
  EXPECT_EQ(trim(""), "");
  EXPECT_EQ(trim("   "), "");
  EXPECT_EQ(trim("x"), "x");
}

TEST(Strings, SplitKeepsEmptyFields) {
  const auto fields = split("a,,b,", ',');
  ASSERT_EQ(fields.size(), 4u);
  EXPECT_EQ(fields[0], "a");
  EXPECT_EQ(fields[1], "");
  EXPECT_EQ(fields[2], "b");
  EXPECT_EQ(fields[3], "");
}

TEST(Strings, SplitWhitespaceDropsEmptyFields) {
  const auto fields = split_whitespace("  mix  o1\t o2 \n");
  ASSERT_EQ(fields.size(), 3u);
  EXPECT_EQ(fields[0], "mix");
  EXPECT_EQ(fields[1], "o1");
  EXPECT_EQ(fields[2], "o2");
}

TEST(Strings, ParseIntAcceptsValidRejectsJunk) {
  EXPECT_EQ(parse_int("42"), 42);
  EXPECT_EQ(parse_int(" 7 "), 7);
  EXPECT_EQ(parse_int("-3"), -3);
  EXPECT_THROW(parse_int("4x"), Error);
  EXPECT_THROW(parse_int(""), Error);
  EXPECT_THROW(parse_int("1.5"), Error);
}

TEST(Strings, ParseDoubleAcceptsValidRejectsJunk) {
  EXPECT_DOUBLE_EQ(parse_double("2.5"), 2.5);
  EXPECT_DOUBLE_EQ(parse_double("-1e3"), -1000.0);
  EXPECT_THROW(parse_double("abc"), Error);
  EXPECT_THROW(parse_double("1.2.3"), Error);
}

TEST(Strings, JoinAndFormat) {
  EXPECT_EQ(join({"a", "b", "c"}, "-"), "a-b-c");
  EXPECT_EQ(join({}, "-"), "");
  EXPECT_EQ(format_fixed(3.14159, 2), "3.14");
  EXPECT_EQ(format_percent(0.7297), "72.97%");
  EXPECT_EQ(format_percent(-0.0039), "-0.39%");
}

TEST(Table, RendersAlignedColumns) {
  TextTable t;
  t.set_header({"case", "value"});
  t.set_alignment({Align::kLeft, Align::kRight});
  t.add_row({"PCR", "160"});
  t.add_row({"MixingTree", "9"});
  const std::string out = t.to_string();
  EXPECT_NE(out.find("| case       | value |"), std::string::npos);
  EXPECT_NE(out.find("| PCR        |   160 |"), std::string::npos);
  EXPECT_NE(out.find("| MixingTree |     9 |"), std::string::npos);
}

TEST(Table, RowWidthMismatchThrows) {
  TextTable t;
  t.set_header({"a", "b"});
  EXPECT_THROW(t.add_row({"only-one"}), Error);
}

TEST(Logging, ParseLogLevelAcceptsAliasesCaseInsensitively) {
  EXPECT_EQ(parse_log_level("debug"), LogLevel::kDebug);
  EXPECT_EQ(parse_log_level("INFO"), LogLevel::kInfo);
  EXPECT_EQ(parse_log_level("Warn"), LogLevel::kWarn);
  EXPECT_EQ(parse_log_level("warning"), LogLevel::kWarn);
  EXPECT_EQ(parse_log_level("error"), LogLevel::kError);
  EXPECT_EQ(parse_log_level("off"), LogLevel::kOff);
  EXPECT_EQ(parse_log_level("none"), LogLevel::kOff);
  EXPECT_EQ(parse_log_level("verbose"), std::nullopt);
  EXPECT_EQ(parse_log_level(""), std::nullopt);
}

TEST(Logging, FormatLogLineHasTimestampTagThreadAndNewline) {
  const std::string line = format_log_line(LogLevel::kInfo, "hello world");
  // 2015-06-08T12:34:56.789Z [fsyn INFO  t0] hello world\n
  ASSERT_GT(line.size(), 25u);
  EXPECT_EQ(line[4], '-');
  EXPECT_EQ(line[10], 'T');
  EXPECT_EQ(line[23], 'Z');
  EXPECT_NE(line.find(" [fsyn INFO  t"), std::string::npos);
  EXPECT_NE(line.find("] hello world\n"), std::string::npos);
  EXPECT_EQ(line.back(), '\n');
  // One line only: the embedded newline count is exactly the trailing one.
  EXPECT_EQ(std::count(line.begin(), line.end(), '\n'), 1);
}

TEST(Logging, CurrentThreadIdIsStableAndDense) {
  const int id = current_thread_id();
  EXPECT_GE(id, 0);
  EXPECT_EQ(current_thread_id(), id);
}

TEST(Logging, SetLogLevelRoundTrips) {
  const LogLevel before = log_level();
  set_log_level(LogLevel::kError);
  EXPECT_EQ(log_level(), LogLevel::kError);
  set_log_level(before);
}

TEST(Rng, Deterministic) {
  Rng a(123), b(123);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.next_u64(), b.next_u64());
}

TEST(Rng, DifferentSeedsDiffer) {
  Rng a(1), b(2);
  int same = 0;
  for (int i = 0; i < 64; ++i) same += a.next_u64() == b.next_u64();
  EXPECT_LT(same, 4);
}

TEST(Rng, NextBelowInRangeAndCoversAll) {
  Rng rng(7);
  std::set<std::uint64_t> seen;
  for (int i = 0; i < 1000; ++i) {
    const auto v = rng.next_below(5);
    EXPECT_LT(v, 5u);
    seen.insert(v);
  }
  EXPECT_EQ(seen.size(), 5u);
}

TEST(Rng, NextIntInclusiveRange) {
  Rng rng(7);
  for (int i = 0; i < 1000; ++i) {
    const int v = rng.next_int(-2, 3);
    EXPECT_GE(v, -2);
    EXPECT_LE(v, 3);
  }
  EXPECT_EQ(rng.next_int(5, 5), 5);
}

TEST(Rng, NextDoubleInUnitInterval) {
  Rng rng(99);
  double sum = 0.0;
  for (int i = 0; i < 10000; ++i) {
    const double v = rng.next_double();
    EXPECT_GE(v, 0.0);
    EXPECT_LT(v, 1.0);
    sum += v;
  }
  EXPECT_NEAR(sum / 10000.0, 0.5, 0.02);
}

TEST(Json, ParsesNestedDocument) {
  const JsonValue doc = JsonValue::parse(R"({
    "name": "pcr A+\n",
    "count": 42,
    "ratio": -1.5e2,
    "flag": true,
    "nothing": null,
    "grid": [[1, 2], [3, 4]],
    "nested": {"x": 7}
  })");
  EXPECT_EQ(doc.at("name").as_string(), "pcr A+\n");
  EXPECT_EQ(doc.at("count").as_int(), 42);
  EXPECT_EQ(doc.at("ratio").as_number(), -150.0);
  EXPECT_TRUE(doc.at("flag").as_bool());
  EXPECT_TRUE(doc.at("nothing").is_null());
  EXPECT_EQ(doc.at("grid").size(), 2u);
  EXPECT_EQ(doc.at("grid").at(1).at(0).as_int(), 3);
  EXPECT_EQ(doc.at("nested").at("x").as_int(), 7);
  EXPECT_TRUE(doc.has("flag"));
  EXPECT_FALSE(doc.has("missing"));
  EXPECT_EQ(doc.find("missing"), nullptr);
}

TEST(Json, PreservesMemberOrderAndRoundTripsIntegers) {
  const JsonValue doc = JsonValue::parse(R"({"b": 1, "a": 9007199254740993})");
  ASSERT_EQ(doc.members().size(), 2u);
  EXPECT_EQ(doc.members()[0].first, "b");
  EXPECT_EQ(doc.members()[1].first, "a");
  // Integers beyond 2^53 keep their exact int64 view.
  EXPECT_EQ(doc.at("a").as_int(), 9007199254740993LL);
}

TEST(Json, RejectsMalformedInput) {
  EXPECT_THROW(JsonValue::parse(""), Error);
  EXPECT_THROW(JsonValue::parse("{"), Error);
  EXPECT_THROW(JsonValue::parse("[1,]"), Error);
  EXPECT_THROW(JsonValue::parse("{\"a\" 1}"), Error);
  EXPECT_THROW(JsonValue::parse("truth"), Error);
  EXPECT_THROW(JsonValue::parse("{} trailing"), Error);
  EXPECT_THROW(JsonValue::parse("\"unterminated"), Error);
  // Type errors are input errors, not crashes.
  const JsonValue doc = JsonValue::parse("{\"a\": 1}");
  EXPECT_THROW(doc.at("a").as_string(), Error);
  EXPECT_THROW(doc.at("b"), Error);
  EXPECT_THROW(doc.at(std::size_t{0}), Error);
}

}  // namespace
}  // namespace fsyn
