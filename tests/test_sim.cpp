// Tests for actuation accounting and the chip simulator: conservation,
// setting-2 rescaling, valve-removal counting, snapshots and the
// independent invariant audit.
#include <gtest/gtest.h>

#include "assay/benchmarks.hpp"
#include "route/router.hpp"
#include "sched/list_scheduler.hpp"
#include "sim/simulator.hpp"
#include "synth/heuristic_mapper.hpp"

namespace fsyn::sim {
namespace {

using route::RoutingResult;
using synth::MappingProblem;

struct Synthesized {
  assay::SequencingGraph graph{"empty"};
  sched::Schedule schedule;
  MappingProblem problem;
  synth::Placement placement;
  route::RoutingResult routing;
};

/// Heap-allocated so `problem`'s pointers into graph/schedule stay valid
/// regardless of how the fixture is handed around.
std::unique_ptr<Synthesized> synthesize_pcr() {
  auto out = std::make_unique<Synthesized>();
  out->graph = assay::make_pcr();
  out->schedule = sched::schedule_asap(out->graph);
  out->problem = MappingProblem::build(out->graph, out->schedule, arch::Architecture(11, 11));
  const auto mapping = synth::map_heuristic(out->problem);
  if (!mapping.has_value()) throw Error("pcr mapping failed in test fixture");
  out->placement = mapping->placement;
  out->routing = route::route_all(out->problem, out->placement);
  if (!out->routing.success) throw Error("pcr routing failed in test fixture");
  return out;
}

TEST(Actuation, PumpConservationSetting1) {
  const auto s = synthesize_pcr();
  const ActuationLedger ledger =
      account(s->problem, s->placement, s->routing, Setting::kConservative);
  // Every mix op charges p_i to each of its ring valves.
  long expected = 0;
  for (const auto& task : s->problem.tasks()) {
    if (task.is_mix) expected += 40L * task.volume;
  }
  EXPECT_EQ(ledger.total_pump_actuations(), expected);
  EXPECT_GE(ledger.max_pump(), 40);
}

TEST(Actuation, Setting2RescalesToDedicatedBudget) {
  const auto s = synthesize_pcr();
  const ActuationLedger ledger = account(s->problem, s->placement, s->routing, Setting::kRescaled);
  // Total per op is ~120 (ceil rounding may add a little).
  long expected_min = 0, expected_max = 0;
  for (const auto& task : s->problem.tasks()) {
    if (!task.is_mix) continue;
    expected_min += 120;
    expected_max += 120 + task.volume;  // ceil adds < 1 per valve
  }
  EXPECT_GE(ledger.total_pump_actuations(), expected_min);
  EXPECT_LE(ledger.total_pump_actuations(), expected_max);
  // Setting 2 never exceeds setting 1 per valve (rings have >= 3 valves).
  const ActuationLedger s1 = account(s->problem, s->placement, s->routing, Setting::kConservative);
  EXPECT_LE(ledger.max_pump(), s1.max_pump());
}

TEST(Actuation, ControlCountsTwoPerPathCell) {
  const auto s = synthesize_pcr();
  const ActuationLedger ledger =
      account(s->problem, s->placement, s->routing, Setting::kConservative);
  long control_sum = 0;
  for (const int v : ledger.control) control_sum += v;
  EXPECT_EQ(control_sum, 2L * s->routing.total_cells);
}

TEST(Actuation, ValveCountsOnlyActuatedCells) {
  const auto s = synthesize_pcr();
  const ActuationLedger ledger =
      account(s->problem, s->placement, s->routing, Setting::kConservative);
  const int valves = ledger.actuated_valve_count();
  EXPECT_GT(valves, 0);
  EXPECT_LT(valves, s->problem.chip().virtual_valve_count());
  // Consistency with the total grid.
  int manual = 0;
  const Grid<int> total = ledger.total();
  for (const int v : total) manual += v > 0;
  EXPECT_EQ(valves, manual);
}

TEST(Simulator, VerifyPassesOnValidSynthesis) {
  const auto s = synthesize_pcr();
  ChipSimulator simulator(s->problem, s->placement, s->routing, Setting::kConservative);
  EXPECT_NO_THROW(simulator.verify());
}

TEST(Simulator, SnapshotsAreMonotoneAndMatchLedger) {
  const auto s = synthesize_pcr();
  ChipSimulator simulator(s->problem, s->placement, s->routing, Setting::kConservative);
  const auto times = simulator.interesting_times();
  ASSERT_FALSE(times.empty());
  Grid<int> previous(s->problem.chip().width(), s->problem.chip().height(), 0);
  for (const int t : times) {
    const Snapshot snap = simulator.snapshot_at(t);
    snap.cumulative.for_each([&](const Point& p, const int& v) {
      EXPECT_GE(v, previous.at(p)) << "actuations decreased at " << p << " t=" << t;
    });
    previous = snap.cumulative;
  }
  const ActuationLedger ledger = simulator.verify();
  const Grid<int> total = ledger.total();
  bool equal = true;
  total.for_each([&](const Point& p, const int& v) {
    if (previous.at(p) != v) equal = false;
  });
  EXPECT_TRUE(equal);
}

TEST(Simulator, SnapshotRenderShowsCountsAndWalls) {
  const auto s = synthesize_pcr();
  ChipSimulator simulator(s->problem, s->placement, s->routing, Setting::kConservative);
  const Snapshot mid = simulator.snapshot_at(10);
  const std::string text = mid.render();
  EXPECT_NE(text.find("t = 10 tu"), std::string::npos);
  EXPECT_NE(text.find("40"), std::string::npos);  // a running/finished mixer ring
  EXPECT_NE(text.find('.'), std::string::npos);   // functionless walls
}

TEST(Simulator, SnapshotListsLiveDevices) {
  const auto s = synthesize_pcr();
  ChipSimulator simulator(s->problem, s->placement, s->routing, Setting::kConservative);
  // t=2: o1..o4 run (Fig. 10(a) shows O3/O4 running at t=2).
  const Snapshot snap = simulator.snapshot_at(2);
  EXPECT_GE(snap.live.size(), 2u);
  bool any_mixer = false;
  for (const std::string& entry : snap.live) {
    if (entry.find("mixer") != std::string::npos) any_mixer = true;
  }
  EXPECT_TRUE(any_mixer);
}

TEST(Simulator, VerifyCatchesOverlappingLiveDevices) {
  // Hand-build a corrupted placement that validate_placement would reject;
  // the simulator's independent audit must reject it too.
  const auto s = synthesize_pcr();
  synth::Placement corrupted = s->placement;
  // Find two tasks with overlapping device windows and collide them.
  int a = -1, b = -1;
  for (int i = 0; i < s->problem.task_count() && a < 0; ++i) {
    for (int j = i + 1; j < s->problem.task_count(); ++j) {
      const auto& ti = s->problem.task(i);
      const auto& tj = s->problem.task(j);
      if (std::max(ti.start, tj.start) < std::min(ti.release, tj.release)) {
        a = i;
        b = j;
        break;
      }
    }
  }
  ASSERT_GE(a, 0);
  corrupted[static_cast<std::size_t>(b)] = corrupted[static_cast<std::size_t>(a)];
  EXPECT_THROW(ChipSimulator(s->problem, corrupted, s->routing, Setting::kConservative),
               LogicError);
}

}  // namespace
}  // namespace fsyn::sim
