// Tests for exact concentration tracking: rational arithmetic, mixture
// computation, and the defining properties of the reconstructed dilution
// benchmarks (serial halving, interpolation of neighbours).
#include <gtest/gtest.h>

#include "assay/benchmarks.hpp"
#include "assay/concentration.hpp"
#include "assay/parser.hpp"
#include "util/error.hpp"

namespace fsyn::assay {
namespace {

TEST(Ratio, NormalizesAndCompares) {
  EXPECT_EQ(Ratio(2, 4), Ratio(1, 2));
  EXPECT_EQ(Ratio(0, 7), Ratio::zero());
  EXPECT_EQ(Ratio(5, 5), Ratio::one());
  EXPECT_THROW(Ratio(1, 0), Error);
  EXPECT_THROW(Ratio(-1, 2), Error);
}

TEST(Ratio, Arithmetic) {
  EXPECT_EQ(Ratio(1, 2) + Ratio(1, 3), Ratio(5, 6));
  EXPECT_EQ(Ratio(1, 2) * Ratio(2, 3), Ratio(1, 3));
  EXPECT_EQ(Ratio(3, 4) * Ratio::zero(), Ratio::zero());
  EXPECT_DOUBLE_EQ(Ratio(1, 4).to_double(), 0.25);
}

TEST(Ratio, DeepProductsStayExact) {
  // (1/2)^20 survives without overflow thanks to cross-reduction.
  Ratio r = Ratio::one();
  for (int i = 0; i < 20; ++i) r = r * Ratio(1, 2);
  EXPECT_EQ(r, Ratio(1, 1 << 20));
}

TEST(Mixtures, OneToThreeDilution) {
  const SequencingGraph g = parse_assay(R"(
assay demo
input  sample
input  buffer
mix    dilute volume 8 duration 6 from sample:1 buffer:3
detect read duration 4 from dilute
)");
  EXPECT_EQ(concentration_of(g, OpId{2}, "sample"), Ratio(1, 4));
  EXPECT_EQ(concentration_of(g, OpId{2}, "buffer"), Ratio(3, 4));
  // Detect passes the mixture through.
  EXPECT_EQ(concentration_of(g, OpId{3}, "sample"), Ratio(1, 4));
  // Unknown fluids are zero.
  EXPECT_EQ(concentration_of(g, OpId{2}, "ghost"), Ratio::zero());
}

TEST(Mixtures, SumToOneOnEveryBenchmark) {
  for (const auto& name : benchmark_names()) {
    const SequencingGraph g = make_benchmark(name);
    const auto mixtures = compute_mixtures(g);
    for (const Operation& op : g.operations()) {
      Ratio sum = Ratio::zero();
      for (const auto& [fluid, share] : mixtures[static_cast<std::size_t>(op.id.index)]) {
        sum = sum + share;
      }
      EXPECT_EQ(sum, Ratio::one()) << name << " op " << op.name;
    }
  }
}

TEST(Mixtures, ExponentialDilutionHalvesPerStage) {
  // The defining property of the reconstructed benchmark [12]: along each
  // chain, the initial sample's concentration is (1/2)^k after k stages.
  const SequencingGraph g = make_exponential_dilution();
  const auto mixtures = compute_mixtures(g);
  int verified_chains = 0;
  for (const Operation& op : g.operations()) {
    if (op.kind != OpKind::kInput || op.name.find("sample") != 0) continue;
    // Walk this chain via the sample's concentration.
    OpId current = op.id;
    int stage = 0;
    while (true) {
      OpId next{-1};
      for (const OpId child : g.children(current)) {
        if (g.op(child).kind == OpKind::kMix) next = child;
      }
      if (!next.valid()) break;
      ++stage;
      const auto& mixture = mixtures[static_cast<std::size_t>(next.index)];
      const auto it = mixture.find(op.name);
      ASSERT_NE(it, mixture.end());
      EXPECT_EQ(it->second, Ratio(1, 1LL << stage))
          << op.name << " stage " << stage;
      current = next;
    }
    EXPECT_GE(stage, 9) << op.name;
    ++verified_chains;
  }
  EXPECT_EQ(verified_chains, 5);
}

TEST(Mixtures, InterpolatingDilutionAveragesNeighbours) {
  // Every cascade mix combines its two parents 1:1, so the sample share of
  // a mix is the average of its parents' sample shares.
  const SequencingGraph g = make_interpolating_dilution();
  const auto mixtures = compute_mixtures(g);
  for (const Operation& op : g.operations()) {
    if (op.kind != OpKind::kMix || op.parents.size() != 2 || !op.ratio.empty()) continue;
    for (const auto& [fluid, share] : mixtures[static_cast<std::size_t>(op.id.index)]) {
      const auto& ma = mixtures[static_cast<std::size_t>(op.parents[0].index)];
      const auto& mb = mixtures[static_cast<std::size_t>(op.parents[1].index)];
      const Ratio a = ma.contains(fluid) ? ma.at(fluid) : Ratio::zero();
      const Ratio b = mb.contains(fluid) ? mb.at(fluid) : Ratio::zero();
      EXPECT_EQ(share, (a + b) * Ratio(1, 2)) << op.name << " fluid " << fluid;
    }
  }
}

TEST(Mixtures, PcrCombinesAllEightReagents) {
  const SequencingGraph g = make_pcr();
  const auto mixtures = compute_mixtures(g);
  // o7 (the root) contains all 8 reagents, each at 1/8 for the balanced
  // binary tree with equal parts.
  const Operation* root = nullptr;
  for (const Operation& op : g.operations()) {
    if (op.name == "o7") root = &op;
  }
  ASSERT_NE(root, nullptr);
  const auto& mixture = mixtures[static_cast<std::size_t>(root->id.index)];
  EXPECT_EQ(mixture.size(), 8u);
  for (const auto& [fluid, share] : mixture) {
    EXPECT_EQ(share, Ratio(1, 8)) << fluid;
  }
}

}  // namespace
}  // namespace fsyn::assay
