// End-to-end synthesis tests: Algorithm 1 on all benchmarks, metric
// relations between the two settings, ablations, ILP mode, determinism and
// the chip-size sweep.
#include <gtest/gtest.h>

#include "assay/benchmarks.hpp"
#include "assay/parser.hpp"
#include "sched/list_scheduler.hpp"
#include "synth/synthesis.hpp"

namespace fsyn::synth {
namespace {

SynthesisOptions fast_options() {
  SynthesisOptions options;
  options.heuristic.sa_iterations = 4000;
  options.chip_sweep = 1;
  return options;
}

TEST(Synthesis, PcrMatchesPaperShape) {
  const auto g = assay::make_pcr();
  const auto schedule = sched::schedule_with_policy(g, sched::make_policy(g, 0));
  const SynthesisResult r = synthesize(g, schedule);
  // Paper Table 1 row 1: vs1 45(40), vs2 35(30), #v 71.  Absolute control
  // actuations depend on routing details; the pump parts are exact.
  EXPECT_EQ(r.vs1_pump, 40);
  EXPECT_EQ(r.vs2_pump, 30);
  EXPECT_LE(r.vs1_max, 55);
  EXPECT_LE(r.vs2_max, 45);
  EXPECT_GT(r.valve_count, 40);
  EXPECT_LT(r.valve_count, 110);
}

class SynthesisEveryBenchmark : public ::testing::TestWithParam<const char*> {};

TEST_P(SynthesisEveryBenchmark, ProducesValidMetrics) {
  const auto g = assay::make_benchmark(GetParam());
  const auto schedule = sched::schedule_with_policy(g, sched::make_policy(g, 1));
  const SynthesisResult r = synthesize(g, schedule, fast_options());

  EXPECT_GE(r.vs1_max, r.vs1_pump);
  EXPECT_GE(r.vs2_max, r.vs2_pump);
  EXPECT_GE(r.vs1_pump, 40);              // at least one full mixing op
  EXPECT_EQ(r.vs1_pump % 40, 0);          // multiples of p_i in setting 1
  EXPECT_LE(r.vs2_pump, r.vs1_pump);      // rescaling lowers per-valve work
  EXPECT_GT(r.valve_count, 0);
  EXPECT_LE(r.valve_count, r.chip_width * r.chip_height);
  EXPECT_TRUE(r.routing.success);
  EXPECT_EQ(static_cast<int>(r.placement.size()),
            g.count(assay::OpKind::kMix) + g.count(assay::OpKind::kDetect));
}

INSTANTIATE_TEST_SUITE_P(AllCases, SynthesisEveryBenchmark,
                         ::testing::Values("pcr", "mixing_tree", "interpolating_dilution",
                                           "exponential_dilution"),
                         [](const auto& info) { return std::string(info.param); });

TEST(Synthesis, BeatsTraditionalOnEveryBenchmark) {
  // The headline claim: the largest number of valve actuations is reduced
  // versus the optimally-bound traditional design in every tested row.
  struct Spec {
    const char* name;
    int increments;
    int vs_tmax;
  };
  const Spec specs[] = {{"pcr", 0, 160},
                        {"mixing_tree", 0, 280},
                        {"interpolating_dilution", 1, 360},
                        {"exponential_dilution", 3, 320}};
  for (const Spec& spec : specs) {
    const auto g = assay::make_benchmark(spec.name);
    const auto schedule = sched::schedule_with_policy(g, sched::make_policy(g, spec.increments));
    const SynthesisResult r = synthesize(g, schedule, fast_options());
    EXPECT_LT(r.vs1_max, spec.vs_tmax) << spec.name;
    EXPECT_LT(r.vs2_max, r.vs1_max + 1) << spec.name;
  }
}

TEST(Synthesis, DeterministicForFixedSeed) {
  const auto g = assay::make_pcr();
  const auto schedule = sched::schedule_with_policy(g, sched::make_policy(g, 0));
  const SynthesisResult a = synthesize(g, schedule, fast_options());
  const SynthesisResult b = synthesize(g, schedule, fast_options());
  EXPECT_EQ(a.placement, b.placement);
  EXPECT_EQ(a.vs1_max, b.vs1_max);
  EXPECT_EQ(a.valve_count, b.valve_count);
}

TEST(Synthesis, ExplicitGridSizeIsHonored) {
  const auto g = assay::make_pcr();
  const auto schedule = sched::schedule_with_policy(g, sched::make_policy(g, 0));
  SynthesisOptions options = fast_options();
  options.grid_size = 12;
  options.max_chip_growth = 0;
  const SynthesisResult r = synthesize(g, schedule, options);
  EXPECT_EQ(r.chip_width, 12);
  EXPECT_EQ(r.chip_height, 12);
}

TEST(Synthesis, ThrowsWhenChipCannotFit) {
  const auto g = assay::make_interpolating_dilution();
  const auto schedule = sched::schedule_with_policy(g, sched::make_policy(g, 1));
  SynthesisOptions options = fast_options();
  options.grid_size = 8;  // far too small for 39 tasks
  options.max_chip_growth = 0;
  options.heuristic.greedy_retries = 1;
  EXPECT_THROW(synthesize(g, schedule, options), Error);
}

TEST(Synthesis, StorageOverlapAblationNeedsMoreArea) {
  // Disabling in-situ storage overlap forces strictly disjoint regions:
  // the smallest feasible chip cannot shrink below the paper configuration.
  const auto g = assay::make_pcr();
  const auto schedule = sched::schedule_with_policy(g, sched::make_policy(g, 0));
  SynthesisOptions with = fast_options();
  SynthesisOptions without = fast_options();
  without.allow_storage_overlap = false;
  const SynthesisResult r_with = synthesize(g, schedule, with);
  const SynthesisResult r_without = synthesize(g, schedule, without);
  EXPECT_GE(r_without.chip_width, r_with.chip_width);
  // Both still beat the traditional 160.
  EXPECT_LT(r_without.vs1_max, 160);
}

TEST(Synthesis, RoutingConvenienceAblationAllowsSpread) {
  const auto g = assay::make_pcr();
  const auto schedule = sched::schedule_with_policy(g, sched::make_policy(g, 0));
  SynthesisOptions options = fast_options();
  options.routing_convenient = false;
  const SynthesisResult r = synthesize(g, schedule, options);
  EXPECT_TRUE(r.routing.success);
  EXPECT_EQ(r.vs1_pump, 40);
}

TEST(Synthesis, IlpModeOnSmallAssay) {
  // A two-mix assay the exact solver can close quickly; Algorithm 1's
  // refinement loop and warm start go through the ILP path.
  const auto g = assay::parse_assay(R"(
assay tiny
input  i1
input  i2
input  i3
mix    a volume 8 duration 6 from i1 i2
mix    b volume 8 duration 6 from a i3
)");
  const auto schedule = sched::schedule_asap(g);
  SynthesisOptions options;
  options.mapper = MapperKind::kIlp;
  options.grid_size = 7;
  options.max_chip_growth = 0;
  options.ilp.time_limit_seconds = 60.0;
  const SynthesisResult r = synthesize(g, schedule, options);
  EXPECT_EQ(r.vs1_pump, 40);
  EXPECT_TRUE(r.routing.success);
}

TEST(Synthesis, RuntimeIsRecorded) {
  const auto g = assay::make_pcr();
  const auto schedule = sched::schedule_with_policy(g, sched::make_policy(g, 0));
  const SynthesisResult r = synthesize(g, schedule, fast_options());
  EXPECT_GT(r.runtime_seconds, 0.0);
  EXPECT_LT(r.runtime_seconds, 60.0);
}

}  // namespace
}  // namespace fsyn::synth
