// Tests for the fault-tolerance and port-assignment extensions, plus the
// additional protocol benchmarks.
#include <gtest/gtest.h>

#include <memory>
#include <set>

#include "assay/benchmarks.hpp"
#include "assay/parser.hpp"
#include "route/port_assignment.hpp"
#include "route/router.hpp"
#include "sched/list_scheduler.hpp"
#include "synth/synthesis.hpp"
#include "util/rng.hpp"

namespace fsyn {
namespace {

// --------------------------------------------------------- fault tolerance

TEST(FaultTolerance, DeadValvesExcludedFromPlacements) {
  const auto g = assay::make_pcr();
  const auto schedule = sched::schedule_asap(g);
  auto problem = synth::MappingProblem::build(g, schedule, arch::Architecture(12, 12));
  problem.set_dead_valves({Point{5, 5}, Point{6, 5}});
  EXPECT_TRUE(problem.is_dead(Point{5, 5}));
  EXPECT_FALSE(problem.is_dead(Point{4, 5}));
  for (int i = 0; i < problem.task_count(); ++i) {
    for (const auto& candidate : problem.candidates_for(i)) {
      EXPECT_FALSE(candidate.footprint().contains(Point{5, 5}));
      EXPECT_FALSE(candidate.footprint().contains(Point{6, 5}));
    }
  }
  EXPECT_THROW(problem.set_dead_valves({Point{99, 0}}), Error);
}

TEST(FaultTolerance, SynthesisAvoidsDeadValves) {
  const auto g = assay::make_pcr();
  const auto schedule = sched::schedule_asap(g);
  synth::SynthesisOptions options;
  options.grid_size = 11;
  options.dead_valves = {Point{5, 5}, Point{5, 6}, Point{6, 5}};
  const auto result = synth::synthesize(g, schedule, options);
  for (const auto& device : result.placement) {
    for (const Point& dead : options.dead_valves) {
      EXPECT_FALSE(device.footprint().contains(dead));
    }
  }
  for (const auto& path : result.routing.paths) {
    for (const Point& cell : path.cells) {
      for (const Point& dead : options.dead_valves) {
        EXPECT_NE(cell, dead);
      }
    }
  }
}

TEST(FaultTolerance, DeadValvesRequireExplicitGrid) {
  const auto g = assay::make_pcr();
  const auto schedule = sched::schedule_asap(g);
  synth::SynthesisOptions options;
  options.dead_valves = {Point{0, 0}};
  EXPECT_THROW(synth::synthesize(g, schedule, options), Error);
}

TEST(FaultTolerance, GracefulDegradationUnderRandomFailures) {
  // Re-synthesis survives a growing set of random dead valves (or refuses
  // cleanly); vs never collapses below the single-op bound.
  const auto g = assay::make_pcr();
  const auto schedule = sched::schedule_asap(g);
  Rng rng(404);
  std::vector<Point> dead;
  int successes = 0;
  for (int wave = 0; wave < 6; ++wave) {
    dead.push_back(Point{rng.next_int(1, 10), rng.next_int(1, 10)});
    synth::SynthesisOptions options;
    options.grid_size = 12;
    options.dead_valves = dead;
    options.heuristic.sa_iterations = 2000;
    try {
      const auto result = synth::synthesize(g, schedule, options);
      ++successes;
      EXPECT_GE(result.vs1_pump, 40);
      EXPECT_LE(result.valve_count, 12 * 12 - static_cast<int>(dead.size()));
    } catch (const Error&) {
      // acceptable once failures crowd the matrix
    }
  }
  EXPECT_GE(successes, 3) << "a 12x12 matrix should tolerate several failures";
}

// --------------------------------------------------------- port assignment

std::unique_ptr<synth::MappingProblem> pcr_problem(const assay::SequencingGraph& g,
                                                   const sched::Schedule& s) {
  return std::make_unique<synth::MappingProblem>(
      synth::MappingProblem::build(g, s, arch::Architecture(11, 11)));
}

TEST(PortAssignment, CoversEveryFluidWithinCapacity) {
  const auto g = assay::make_pcr();
  const auto schedule = sched::schedule_asap(g);
  auto problem = pcr_problem(g, schedule);
  const auto mapping = synth::map_heuristic(*problem);
  ASSERT_TRUE(mapping.has_value());

  const route::PortAssignment assignment = route::assign_ports(*problem, mapping->placement);
  EXPECT_EQ(assignment.status, ilp::MilpStatus::kOptimal);
  EXPECT_EQ(assignment.port_of_fluid.size(), 8u);  // PCR has 8 reagents
  // Balanced: 8 fluids over 2 input ports -> max 4 each.
  std::map<int, int> load;
  for (const auto& [fluid, port] : assignment.port_of_fluid) {
    EXPECT_GE(port, 0);
    EXPECT_LT(port, 2);
    ++load[port];
  }
  for (const auto& [port, count] : load) EXPECT_LE(count, 4);
}

TEST(PortAssignment, RouterHonoursThePinning) {
  const auto g = assay::make_pcr();
  const auto schedule = sched::schedule_asap(g);
  auto problem = pcr_problem(g, schedule);
  const auto mapping = synth::map_heuristic(*problem);
  ASSERT_TRUE(mapping.has_value());
  const route::PortAssignment assignment = route::assign_ports(*problem, mapping->placement);

  route::RouterOptions options;
  options.port_of_fluid = assignment.port_of_fluid;
  const route::RoutingResult routing = route_all(*problem, mapping->placement, options);
  ASSERT_TRUE(routing.success);
  // Collect the input-port cells in input order.
  std::vector<Point> input_cells;
  for (const auto& port : problem->chip().ports()) {
    if (port.is_input) input_cells.push_back(port.cell);
  }
  for (const auto& path : routing.paths) {
    if (path.kind != route::TransportKind::kFill) continue;
    const std::string fluid = problem->graph().op(path.source_input).name;
    const int pinned = assignment.port_of_fluid.at(fluid);
    EXPECT_EQ(path.cells.front(), input_cells[static_cast<std::size_t>(pinned)])
        << path.label;
  }
}

TEST(PortAssignment, MatchesBruteForceOnTinyCase) {
  // 2 fluids, 2 ports: enumerate all 4 assignments and compare the MILP's
  // distance against the best balanced one.
  const auto g = assay::parse_assay(R"(
assay tiny
input i1
input i2
mix a volume 8 duration 6 from i1 i2
)");
  const auto schedule = sched::schedule_asap(g);
  auto problem = std::make_unique<synth::MappingProblem>(
      synth::MappingProblem::build(g, schedule, arch::Architecture(9, 9)));
  const auto mapping = synth::map_heuristic(*problem);
  ASSERT_TRUE(mapping.has_value());
  const route::PortAssignment assignment = route::assign_ports(*problem, mapping->placement);
  ASSERT_EQ(assignment.status, ilp::MilpStatus::kOptimal);

  // Recompute the cost table the same way the assigner does.
  std::vector<Point> ports;
  for (const auto& port : problem->chip().ports()) {
    if (port.is_input) ports.push_back(port.cell);
  }
  auto fill_cost = [&](const std::string& fluid, int port) {
    double total = 0.0;
    for (const auto& op : g.operations()) {
      if (op.kind != assay::OpKind::kInput || op.name != fluid) continue;
      for (const auto child : g.children(op.id)) {
        const auto ring =
            mapping->placement[static_cast<std::size_t>(problem->task_of(child))].pump_cells();
        int best = std::numeric_limits<int>::max();
        for (const Point& cell : ring) {
          best = std::min(best, manhattan_distance(ports[static_cast<std::size_t>(port)], cell));
        }
        total += best;
      }
    }
    return total;
  };
  double best = std::numeric_limits<double>::infinity();
  for (int p1 = 0; p1 < 2; ++p1) {
    for (int p2 = 0; p2 < 2; ++p2) {
      if (p1 == p2) continue;  // capacity 1 each under the balanced default
      best = std::min(best, fill_cost("i1", p1) + fill_cost("i2", p2));
    }
  }
  // Balanced capacity for 2 fluids / 2 ports is 1 each, so the MILP space
  // is exactly the enumeration above.
  EXPECT_NEAR(assignment.total_distance, best, 1e-9);
}

TEST(PortAssignment, CapacityOneIsInfeasibleForManyFluids) {
  const auto g = assay::make_pcr();  // 8 fluids, 2 input ports
  const auto schedule = sched::schedule_asap(g);
  auto problem = pcr_problem(g, schedule);
  const auto mapping = synth::map_heuristic(*problem);
  ASSERT_TRUE(mapping.has_value());
  route::PortAssignmentOptions options;
  options.capacity = 1;
  EXPECT_THROW(route::assign_ports(*problem, mapping->placement, options), Error);
}

// ------------------------------------------------------- extra benchmarks

TEST(ExtraBenchmarks, ProteinCountsAndStructure) {
  const auto g = assay::make_protein_assay();
  EXPECT_EQ(g.size(), 39);
  EXPECT_EQ(g.mixing_count(), 15);
  EXPECT_EQ(g.count(assay::OpKind::kDetect), 8);
  // All dilutions are exact 1:1.
  for (const auto& op : g.operations()) {
    if (op.kind == assay::OpKind::kMix && op.name.find("dlt") == 0) {
      EXPECT_EQ(op.ratio, (std::vector<int>{1, 1}));
    }
  }
}

TEST(ExtraBenchmarks, InvitroCountsAndStructure) {
  const auto g = assay::make_invitro();
  EXPECT_EQ(g.size(), 24);
  EXPECT_EQ(g.mixing_count(), 9);
  EXPECT_EQ(g.count(assay::OpKind::kDetect), 9);
  // Every sample feeds 3 mixes.
  for (const auto& op : g.operations()) {
    if (op.kind == assay::OpKind::kInput && op.name[0] == 'S') {
      EXPECT_EQ(g.children(op.id).size(), 3u);
    }
  }
}

TEST(ExtraBenchmarks, BothSynthesizeEndToEnd) {
  for (const char* name : {"protein", "invitro"}) {
    const auto g = assay::make_benchmark(name);
    const auto schedule = sched::schedule_with_policy(g, sched::make_policy(g, 1));
    synth::SynthesisOptions options;
    options.heuristic.sa_iterations = 3000;
    options.chip_sweep = 1;
    const auto result = synth::synthesize(g, schedule, options);
    EXPECT_GE(result.vs1_pump, 40) << name;
    EXPECT_TRUE(result.routing.success) << name;
  }
}

TEST(ExtraBenchmarks, ExtendedRegistryIsSuperset) {
  const auto base = assay::benchmark_names();
  const auto extended = assay::extended_benchmark_names();
  EXPECT_EQ(extended.size(), base.size() + 2);
  for (const auto& name : extended) {
    EXPECT_NO_THROW(assay::make_benchmark(name).validate());
  }
}

}  // namespace
}  // namespace fsyn
