// Tests for src/fleet: walk-pattern self-test structure and wear
// accounting, exhaustive single-fault diagnosis sweeps, the documented
// multi-fault aliasing limitation, degraded-valve early warning, fault-plan
// validation, and the closed loop end to end — injected degradation found
// by the self-test alone (never the oracle), repaired via warm-started
// re-synthesis, with the metrics visible through the service registry and
// bit-identical reports at a fixed seed.
#include <gtest/gtest.h>

#include <algorithm>
#include <set>
#include <string>

#include "assay/benchmarks.hpp"
#include "fleet/diagnosis.hpp"
#include "fleet/fleet.hpp"
#include "fleet/test_pattern.hpp"
#include "fleet/virtual_chip.hpp"
#include "rel/fault_plan.hpp"
#include "sched/list_scheduler.hpp"
#include "svc/service.hpp"
#include "synth/synthesis.hpp"

namespace fsyn::fleet {
namespace {

// ----------------------------------------------------------- test patterns

TEST(TestPattern, WalkScheduleCoversEveryCellInFourVectors) {
  const TestSchedule schedule = compile_self_test(5, 4);
  EXPECT_EQ(5, schedule.width);
  EXPECT_EQ(4, schedule.height);
  // Closure rows+cols then opening rows+cols: 2 * (4 + 5) vectors.
  ASSERT_EQ(18u, schedule.vectors.size());

  Grid<int> touched(5, 4, 0);
  for (const TestVector& vector : schedule.vectors) {
    for (const Point& cell : vector.cells) touched.at(cell.x, cell.y) += 1;
  }
  for (int y = 0; y < 4; ++y) {
    for (int x = 0; x < 5; ++x) EXPECT_EQ(4, touched.at(x, y)) << x << "," << y;
  }
}

TEST(TestPattern, ControlProgramReplayMatchesActuationsPerCell) {
  const TestSchedule schedule = compile_self_test(4, 3);
  const Grid<int> wear = schedule.to_control_program().replay(4, 3);
  for (int y = 0; y < 3; ++y) {
    for (int x = 0; x < 4; ++x) {
      EXPECT_EQ(schedule.actuations_per_cell(), wear.at(x, y));
    }
  }
}

TEST(TestPattern, ExpectedResponseAllPassAtNominal) {
  const TestSchedule schedule = compile_self_test(3, 3);
  const TestResponse expected = expected_response(schedule, 5.0);
  ASSERT_EQ(schedule.vectors.size(), expected.vectors.size());
  for (const VectorResponse& response : expected.vectors) {
    EXPECT_TRUE(response.pass);
    EXPECT_DOUBLE_EQ(5.0, response.latency_ms);
  }
}

// -------------------------------------------------------------- diagnosis

/// Shared healthy mapping: synthesized once, reused by every chip test.
class DiagnosisTest : public testing::Test {
 protected:
  static void SetUpTestSuite() {
    graph_ = new assay::SequencingGraph(assay::make_benchmark("pcr"));
    schedule_ = new sched::Schedule(sched::schedule_asap(*graph_));
    healthy_ = new synth::SynthesisResult(synth::synthesize(*graph_, *schedule_));
  }
  static void TearDownTestSuite() {
    delete healthy_;
    delete schedule_;
    delete graph_;
    healthy_ = nullptr;
    schedule_ = nullptr;
    graph_ = nullptr;
  }

  VirtualChip make_chip() const { return VirtualChip(7, 0, *healthy_, {}); }

  static assay::SequencingGraph* graph_;
  static sched::Schedule* schedule_;
  static synth::SynthesisResult* healthy_;
};

assay::SequencingGraph* DiagnosisTest::graph_ = nullptr;
sched::Schedule* DiagnosisTest::schedule_ = nullptr;
synth::SynthesisResult* DiagnosisTest::healthy_ = nullptr;

TEST_F(DiagnosisTest, ExhaustiveSingleFaultSweepLocalizesExactly) {
  // Every cell of the matrix, in both stuck modes: the self-test response
  // alone must name exactly that valve, unaliased, with the right mode.
  const int width = healthy_->chip_width;
  const int height = healthy_->chip_height;
  const TestSchedule schedule = compile_self_test(width, height);
  const TestResponse expected = expected_response(schedule, 5.0);
  for (const rel::FaultMode mode :
       {rel::FaultMode::kStuckOpen, rel::FaultMode::kStuckClosed}) {
    for (int y = 0; y < height; ++y) {
      for (int x = 0; x < width; ++x) {
        VirtualChip chip = make_chip();
        chip.force_fault({x, y}, mode);
        const Diagnosis diagnosis = diagnose(schedule, expected, chip.respond(schedule));
        ASSERT_EQ(1u, diagnosis.stuck.size()) << x << "," << y;
        EXPECT_EQ(Point(x, y), diagnosis.stuck[0].valve);
        EXPECT_EQ(mode, diagnosis.stuck[0].mode);
        EXPECT_FALSE(diagnosis.stuck[0].aliased);
        EXPECT_TRUE(diagnosis.degraded.empty());
      }
    }
  }
}

TEST_F(DiagnosisTest, TwoFaultsSharingALineLocalizeExactly) {
  // Same row: the row vector fails once but two distinct columns fail, so
  // the cross product is exactly the two true cells.
  VirtualChip chip = make_chip();
  chip.force_fault({1, 2}, rel::FaultMode::kStuckOpen);
  chip.force_fault({4, 2}, rel::FaultMode::kStuckOpen);
  const TestSchedule schedule = compile_self_test(chip.width(), chip.height());
  const TestResponse expected = expected_response(schedule, 5.0);
  const Diagnosis diagnosis = diagnose(schedule, expected, chip.respond(schedule));
  ASSERT_EQ(2u, diagnosis.stuck.size());
  std::set<Point> found;
  for (const DiagnosedFault& fault : diagnosis.stuck) {
    EXPECT_FALSE(fault.aliased);
    found.insert(fault.valve);
  }
  EXPECT_EQ((std::set<Point>{{1, 2}, {4, 2}}), found);
}

TEST_F(DiagnosisTest, DiagonalFaultPairAliasesToFourCellSuperset) {
  // The documented walk-pattern limitation: two faults at distinct rows AND
  // distinct columns are indistinguishable from their 4-cell cross product.
  // The candidates are flagged aliased and must include both true faults.
  VirtualChip chip = make_chip();
  chip.force_fault({1, 1}, rel::FaultMode::kStuckClosed);
  chip.force_fault({3, 4}, rel::FaultMode::kStuckClosed);
  const TestSchedule schedule = compile_self_test(chip.width(), chip.height());
  const TestResponse expected = expected_response(schedule, 5.0);
  const Diagnosis diagnosis = diagnose(schedule, expected, chip.respond(schedule));
  ASSERT_EQ(4u, diagnosis.stuck.size());
  std::set<Point> candidates;
  for (const DiagnosedFault& fault : diagnosis.stuck) {
    EXPECT_TRUE(fault.aliased);
    EXPECT_EQ(rel::FaultMode::kStuckClosed, fault.mode);
    candidates.insert(fault.valve);
  }
  EXPECT_EQ((std::set<Point>{{1, 1}, {1, 4}, {3, 1}, {3, 4}}), candidates);
}

TEST_F(DiagnosisTest, DegradedValveRaisesLatencyWarningBeforeSticking) {
  VirtualChip chip = make_chip();
  chip.force_wear_fraction({2, 3}, 0.9);  // past degrade_fraction, below life
  const TestSchedule schedule = compile_self_test(chip.width(), chip.height());
  const TestResponse expected = expected_response(schedule, 5.0);
  const Diagnosis diagnosis = diagnose(schedule, expected, chip.respond(schedule));
  EXPECT_TRUE(diagnosis.stuck.empty());
  ASSERT_EQ(1u, diagnosis.degraded.size());
  EXPECT_EQ(Point(2, 3), diagnosis.degraded[0]);
}

TEST_F(DiagnosisTest, ToFaultPlanCarriesDiagnosedCellsAtRun) {
  VirtualChip chip = make_chip();
  chip.force_fault({0, 5}, rel::FaultMode::kStuckOpen);
  const TestSchedule schedule = compile_self_test(chip.width(), chip.height());
  const TestResponse expected = expected_response(schedule, 5.0);
  const Diagnosis diagnosis = diagnose(schedule, expected, chip.respond(schedule));
  const rel::FaultPlan plan = diagnosis.to_fault_plan(120);
  ASSERT_EQ(1u, plan.events.size());
  EXPECT_EQ(Point(0, 5), plan.events[0].valve);
  EXPECT_EQ(rel::FaultMode::kStuckOpen, plan.events[0].mode);
  EXPECT_EQ(120, plan.events[0].at_run);
  EXPECT_NO_THROW(plan.validate(chip.width(), chip.height()));
}

TEST_F(DiagnosisTest, VirtualChipIsDeterministicInSeedChipAndValve) {
  VirtualChip a(2015, 3, *healthy_, {});
  VirtualChip b(2015, 3, *healthy_, {});
  for (int run = 0; run < 400; ++run) {
    a.advance_run();
    b.advance_run();
  }
  const std::vector<ChipFault> fa = a.faults();
  const std::vector<ChipFault> fb = b.faults();
  ASSERT_EQ(fa.size(), fb.size());
  for (std::size_t i = 0; i < fa.size(); ++i) {
    EXPECT_EQ(fa[i].valve, fb[i].valve);
    EXPECT_EQ(fa[i].mode, fb[i].mode);
    EXPECT_EQ(fa[i].onset_run, fb[i].onset_run);
  }
}

// ------------------------------------------------------------- fault plans

TEST(FaultPlanValidation, RejectsDuplicateEvents) {
  try {
    rel::FaultPlan::parse("4,5@120:closed;4,5@120:open");
    FAIL() << "expected Error";
  } catch (const Error& e) {
    EXPECT_NE(std::string(e.what()).find("duplicate"), std::string::npos) << e.what();
  }
  // Same valve at different runs is fine (modes can even change).
  EXPECT_NO_THROW(rel::FaultPlan::parse("4,5@120:closed;4,5@260:open"));
}

TEST(FaultPlanValidation, RejectsNegativeCoordinates) {
  EXPECT_THROW(rel::FaultPlan::parse("-1,5"), Error);
  EXPECT_THROW(rel::FaultPlan::parse("4,-2@7"), Error);
}

TEST(FaultPlanValidation, ValidateNamesOutOfGridValves) {
  const rel::FaultPlan plan = rel::FaultPlan::parse("4,5;9,2");
  EXPECT_NO_THROW(plan.validate(10, 10));
  try {
    plan.validate(9, 9);  // 9,2 is outside a 9x9 matrix
    FAIL() << "expected Error";
  } catch (const Error& e) {
    EXPECT_NE(std::string(e.what()).find("9,2"), std::string::npos) << e.what();
    EXPECT_NE(std::string(e.what()).find("9x9"), std::string::npos) << e.what();
  }
}

// ------------------------------------------------------------- closed loop

FleetOptions small_fleet_options() {
  FleetOptions options;
  options.chips = 4;
  options.cadence = 5;
  options.horizon = 40;
  options.seed = 2015;
  options.repair_workers = 2;
  options.synthesis.heuristic.seed = 2015;
  return options;
}

TEST(ClosedLoop, DetectsDiagnosesRepairsAndReports) {
  // End-to-end acceptance: chips wear out under the hidden Weibull model,
  // the periodic self-test (not the oracle) finds the stuck valves, and
  // warm-started degraded re-synthesis puts the chips back in service.
  const assay::SequencingGraph graph = assay::make_benchmark("pcr");
  const FleetReport report = run_fleet(graph, small_fleet_options());

  EXPECT_EQ(4, report.chips);
  EXPECT_EQ(160, report.runs_possible);
  EXPECT_GT(report.assay_runs, 0);
  EXPECT_GT(report.self_tests, 0);
  // The default model wears pcr chips out well inside 40 runs.
  EXPECT_GT(report.faults_occurred, 0);
  EXPECT_GT(report.faults_detected, 0);
  EXPECT_GT(report.repairs_attempted, 0);
  EXPECT_GT(report.repairs_succeeded, 0);
  EXPECT_GT(report.repairs_warm_started, 0);
  EXPECT_GT(report.availability(), 0.0);
  EXPECT_LE(report.availability(), 1.0);
  EXPECT_GE(report.mean_detection_latency_runs(), 0.0);
  // Detection can never precede onset, and a detected fault's latency is
  // bounded by the cadence (the next self-test after onset, fresh findings
  // excepted by aliasing).
  for (const FaultRecord& record : report.fault_log) {
    if (record.missed()) continue;
    EXPECT_GE(record.detected_run, record.onset_run);
  }
  EXPECT_EQ(report.faults_occurred, report.faults_detected + report.faults_missed);
  EXPECT_EQ(static_cast<std::size_t>(report.faults_occurred), report.fault_log.size());

  const std::string json = report.to_json();
  EXPECT_NE(json.find("\"format\": \"flowsynth-fleet-v1\""), std::string::npos);
  EXPECT_NE(json.find("\"mean_detection_latency_runs\""), std::string::npos);
  EXPECT_NE(json.find("\"availability\""), std::string::npos);
  EXPECT_NE(json.find("\"success_rate\""), std::string::npos);
  // Timing stays out of the default document (bit-identical reruns).
  EXPECT_EQ(json.find("\"timing\""), std::string::npos);
  EXPECT_NE(report.to_json(/*include_timing=*/true).find("\"timing\""),
            std::string::npos);
}

TEST(ClosedLoop, DoubleRunIsBitIdenticalAtFixedSeed) {
  const assay::SequencingGraph graph = assay::make_benchmark("pcr");
  const FleetReport first = run_fleet(graph, small_fleet_options());
  const FleetReport second = run_fleet(graph, small_fleet_options());
  EXPECT_EQ(first.to_json(), second.to_json());

  FleetOptions other = small_fleet_options();
  other.seed = 7;
  EXPECT_NE(first.to_json(), run_fleet(graph, other).to_json());
}

TEST(ClosedLoop, CancellationAbortsTheHorizonLoop) {
  CancelSource source;
  source.cancel();
  FleetOptions options = small_fleet_options();
  options.cancel = source.token();
  const assay::SequencingGraph graph = assay::make_benchmark("pcr");
  EXPECT_THROW(run_fleet(graph, options), CancelledError);
}

TEST(ClosedLoop, FleetJobRunsThroughServiceWithMetrics) {
  // The kFleet service path: the job document is the fleet report, and the
  // registry's fleet counters land in both metrics serializations.
  auto graph =
      std::make_shared<const assay::SequencingGraph>(assay::make_benchmark("pcr"));
  svc::JobSpec spec = make_fleet_job(graph, small_fleet_options());
  EXPECT_EQ(svc::JobKind::kFleet, spec.kind);
  EXPECT_EQ(svc::JobPriority::kBatch, spec.priority);

  svc::BatchService::Config config;
  config.workers = 1;
  svc::BatchService service(config);
  const svc::JobResult result = service.submit(std::move(spec)).get();
  ASSERT_EQ(svc::JobStatus::kDone, result.status);
  EXPECT_EQ("fleet", result.winner);
  ASSERT_NE(nullptr, result.document);
  EXPECT_NE(result.document->find("\"format\": \"flowsynth-fleet-v1\""),
            std::string::npos);

  const svc::MetricsSnapshot metrics = service.metrics();
  EXPECT_EQ(1, metrics.fleet_jobs);
  EXPECT_EQ(4, metrics.fleet_chips);
  EXPECT_GT(metrics.fleet_assay_runs, 0);
  EXPECT_GT(metrics.fleet_faults_detected, 0);
  EXPECT_GT(metrics.fleet_repairs_succeeded, 0);
  EXPECT_GT(metrics.fleet_runs_possible, 0);

  const std::string json = metrics.to_json();
  EXPECT_NE(json.find("\"fleet\""), std::string::npos);
  EXPECT_NE(json.find("\"availability\""), std::string::npos);
  EXPECT_NE(json.find("\"mean_detection_latency_runs\""), std::string::npos);

  const std::string prometheus = metrics.to_prometheus();
  EXPECT_NE(prometheus.find("flowsynth_fleet_jobs_total"), std::string::npos);
  EXPECT_NE(prometheus.find("flowsynth_fleet_faults_total"), std::string::npos);
  EXPECT_NE(prometheus.find("flowsynth_fleet_availability"), std::string::npos);
  EXPECT_NE(prometheus.find("stage=\"fleet\""), std::string::npos);
}

}  // namespace
}  // namespace fsyn::fleet
