// Tests for ILP presolve: implied-bound propagation, integer rounding,
// infeasibility detection, and equivalence of solve_milp with and without
// presolve on randomized models.
#include <gtest/gtest.h>

#include "ilp/branch_and_bound.hpp"
#include "ilp/presolve.hpp"
#include "util/rng.hpp"

namespace fsyn::ilp {
namespace {

TEST(Presolve, TightensSimpleUpperBound) {
  // x + y <= 4 with y >= 3  =>  x <= 1.
  Model m;
  const VarId x = m.add_continuous(0, 100, "x");
  const VarId y = m.add_continuous(3, 100, "y");
  m.add_constraint(1.0 * x + 1.0 * y, Relation::kLessEqual, 4.0);
  const PresolveResult r = presolve(m);
  EXPECT_EQ(r.status, PresolveStatus::kOk);
  EXPECT_NEAR(r.upper[static_cast<std::size_t>(x.index)], 1.0, 1e-9);
  EXPECT_NEAR(r.upper[static_cast<std::size_t>(y.index)], 4.0, 1e-9);
  EXPECT_GE(r.tightenings, 2);
}

TEST(Presolve, IntegerBoundsRoundInward) {
  // 2x <= 7 with x integer  =>  x <= 3 (not 3.5).
  Model m;
  const VarId x = m.add_integer(0, 100, "x");
  m.add_constraint(2.0 * x, Relation::kLessEqual, 7.0);
  const PresolveResult r = presolve(m);
  EXPECT_NEAR(r.upper[static_cast<std::size_t>(x.index)], 3.0, 1e-9);
}

TEST(Presolve, GreaterEqualTightensLowerBound) {
  // x + y >= 8 with y <= 2  =>  x >= 6.
  Model m;
  const VarId x = m.add_continuous(0, 100, "x");
  m.add_continuous(0, 2, "y");
  LinearExpr e = 1.0 * x;
  e.add_term(VarId{1}, 1.0);
  m.add_constraint(e, Relation::kGreaterEqual, 8.0);
  const PresolveResult r = presolve(m);
  EXPECT_NEAR(r.lower[0], 6.0, 1e-9);
}

TEST(Presolve, PropagatesAcrossRounds) {
  // Chain: x <= 3 implies y <= 3 implies z <= 3 over two rows.
  Model m;
  const VarId x = m.add_continuous(0, 3, "x");
  const VarId y = m.add_continuous(0, 100, "y");
  const VarId z = m.add_continuous(0, 100, "z");
  m.add_constraint(1.0 * y + (-1.0) * x, Relation::kLessEqual, 0.0);  // y <= x
  m.add_constraint(1.0 * z + (-1.0) * y, Relation::kLessEqual, 0.0);  // z <= y
  const PresolveResult r = presolve(m);
  EXPECT_NEAR(r.upper[static_cast<std::size_t>(y.index)], 3.0, 1e-9);
  EXPECT_NEAR(r.upper[static_cast<std::size_t>(z.index)], 3.0, 1e-9);
}

TEST(Presolve, DetectsInfeasibility) {
  // x >= 5 and x <= 2 via rows.
  Model m;
  const VarId x = m.add_continuous(0, 100, "x");
  m.add_constraint(1.0 * x, Relation::kGreaterEqual, 5.0);
  m.add_constraint(1.0 * x, Relation::kLessEqual, 2.0);
  EXPECT_EQ(presolve(m).status, PresolveStatus::kInfeasible);
}

TEST(Presolve, FixesBinariesFromAssignmentRows) {
  // a + b = 2 over binaries fixes both to 1.
  Model m;
  const VarId a = m.add_binary("a");
  const VarId b = m.add_binary("b");
  m.add_constraint(1.0 * a + 1.0 * b, Relation::kEqual, 2.0);
  const PresolveResult r = presolve(m);
  EXPECT_EQ(r.status, PresolveStatus::kOk);
  EXPECT_NEAR(r.lower[static_cast<std::size_t>(a.index)], 1.0, 1e-9);
  EXPECT_NEAR(r.lower[static_cast<std::size_t>(b.index)], 1.0, 1e-9);
  EXPECT_EQ(r.fixed_variables, 2);
}

TEST(Presolve, LeavesFeasibleRegionIntact) {
  // Presolve must never cut off integer-feasible points: on random models,
  // solve_milp with and without presolve agree.
  Rng rng(314);
  for (int trial = 0; trial < 30; ++trial) {
    Model m;
    const int n = rng.next_int(3, 8);
    std::vector<VarId> vars;
    for (int j = 0; j < n; ++j) vars.push_back(m.add_binary());
    const int rows = rng.next_int(1, 4);
    for (int i = 0; i < rows; ++i) {
      LinearExpr e;
      for (int j = 0; j < n; ++j) e.add_term(vars[static_cast<std::size_t>(j)], rng.next_int(-3, 3));
      m.add_constraint(e, rng.next_bool(0.7) ? Relation::kLessEqual : Relation::kGreaterEqual,
                       rng.next_int(-2, 5));
    }
    LinearExpr obj;
    for (int j = 0; j < n; ++j) obj.add_term(vars[static_cast<std::size_t>(j)], rng.next_int(-5, 5));
    m.set_objective(obj, Sense::kMaximize);

    MilpOptions with, without;
    with.presolve = true;
    without.presolve = false;
    const MilpResult a = solve_milp(m, with);
    const MilpResult b = solve_milp(m, without);
    ASSERT_EQ(a.status, b.status) << "trial " << trial;
    if (a.status == MilpStatus::kOptimal) {
      EXPECT_NEAR(a.objective, b.objective, 1e-6) << "trial " << trial;
    }
  }
}

}  // namespace
}  // namespace fsyn::ilp
