// Validity and policy tests for the root cutting-plane machinery.
//
// The load-bearing check is CutValidity: on the same 80-seed fuzz family
// `test_ilp_fuzz.cpp` uses, every cut the separators produce — first-round
// Gomory and cover cuts straight from the generators, plus the multi-round
// survivors `run_root_cut_loop` retains — must be satisfied by *every*
// integer-feasible point of the instance, verified by full enumeration of
// the bound box.  A single violated point would mean the cut can slice off
// an optimum and silently break the cuts-on/cuts-off objective parity the
// solver promises.  The remaining tests exercise the CutPool filtering and
// aging policy and `LpSolver::append_rows` (warm row appending) directly.
#include <cmath>
#include <cstdint>
#include <optional>
#include <vector>

#include <gtest/gtest.h>

#include "ilp/cuts.hpp"
#include "ilp/model.hpp"
#include "ilp/simplex.hpp"
#include "util/cancel.hpp"
#include "util/rng.hpp"

namespace fsyn::ilp {
namespace {

struct FuzzInstance {
  Model model;
  std::vector<int> lower, upper;  ///< integer bound box, model order
};

/// Same generator (and seed schedule) as tests/test_ilp_fuzz.cpp, so the cut
/// validity sweep covers exactly the instances the solver parity matrix runs.
FuzzInstance make_instance(std::uint64_t seed) {
  Rng rng(seed);
  FuzzInstance out;
  const int n = rng.next_int(2, 6);
  std::vector<int> anchor;
  for (int j = 0; j < n; ++j) {
    const int lo = rng.next_int(-3, 0);
    const int hi = rng.next_int(0, 4);
    out.lower.push_back(lo);
    out.upper.push_back(hi);
    out.model.add_integer(lo, hi);
    anchor.push_back(rng.next_int(lo, hi));
  }
  const bool anchored = rng.next_bool(0.5);
  const int rows = rng.next_int(1, 10);
  for (int i = 0; i < rows; ++i) {
    LinearExpr expr;
    double anchor_value = 0.0;
    int terms = 0;
    for (int j = 0; j < n; ++j) {
      if (!rng.next_bool(0.7)) continue;
      int coeff = rng.next_int(-4, 4);
      if (coeff == 0) coeff = 1;
      expr.add_term(VarId{j}, coeff);
      anchor_value += coeff * anchor[static_cast<std::size_t>(j)];
      ++terms;
    }
    if (terms == 0) {
      expr.add_term(VarId{0}, 1.0);
      anchor_value = anchor[0];
    }
    const int relation = rng.next_int(0, 2);
    if (relation == 0) {
      const double rhs = anchored ? anchor_value + rng.next_int(0, 4) : rng.next_int(-6, 10);
      out.model.add_constraint(expr, Relation::kLessEqual, rhs);
    } else if (relation == 1) {
      const double rhs = anchored ? anchor_value - rng.next_int(0, 4) : rng.next_int(-10, 6);
      out.model.add_constraint(expr, Relation::kGreaterEqual, rhs);
    } else {
      const double rhs = anchored ? anchor_value : rng.next_int(-4, 4);
      out.model.add_constraint(expr, Relation::kEqual, rhs);
    }
  }
  LinearExpr objective;
  for (int j = 0; j < n; ++j) {
    objective.add_term(VarId{j}, rng.next_int(-5, 5));
  }
  out.model.set_objective(objective, rng.next_bool(0.5) ? Sense::kMinimize : Sense::kMaximize);
  return out;
}

double cut_lhs(const Cut& cut, const std::vector<double>& point) {
  double lhs = 0.0;
  for (std::size_t k = 0; k < cut.cols.size(); ++k) {
    lhs += cut.vals[k] * point[static_cast<std::size_t>(cut.cols[k])];
  }
  return lhs;
}

/// Visits every integer point of the instance's bound box that satisfies the
/// model constraints; returns the number of feasible points visited.
template <typename Visit>
int for_each_feasible_point(const FuzzInstance& instance, Visit&& visit) {
  const int n = instance.model.variable_count();
  std::vector<double> point(static_cast<std::size_t>(n));
  std::vector<int> cursor(instance.lower.begin(), instance.lower.end());
  int feasible = 0;
  for (;;) {
    for (int j = 0; j < n; ++j) point[static_cast<std::size_t>(j)] = cursor[static_cast<std::size_t>(j)];
    if (instance.model.is_feasible(point)) {
      ++feasible;
      visit(point);
    }
    int j = 0;
    while (j < n && ++cursor[static_cast<std::size_t>(j)] > instance.upper[static_cast<std::size_t>(j)]) {
      cursor[static_cast<std::size_t>(j)] = instance.lower[static_cast<std::size_t>(j)];
      ++j;
    }
    if (j == n) break;
  }
  return feasible;
}

void expect_cut_valid(const FuzzInstance& instance, const Cut& cut, const char* label,
                      std::uint64_t seed) {
  for_each_feasible_point(instance, [&](const std::vector<double>& point) {
    EXPECT_LE(cut_lhs(cut, point), cut.rhs + 1e-6)
        << label << " cut violated by feasible integer point (seed " << seed << ")";
  });
}

class CutFuzz : public ::testing::TestWithParam<int> {};

/// Every generated cut must hold at every integer-feasible point.  Checks
/// both the raw first-round output of the two separators and the retained
/// set of the full multi-round loop (whose later rounds cut a relaxation
/// already tightened by earlier cuts).
TEST_P(CutFuzz, NoGeneratedCutViolatesAnIntegerFeasiblePoint) {
  const std::uint64_t seed = 0xF002 + 977ULL * static_cast<std::uint64_t>(GetParam());
  const FuzzInstance instance = make_instance(seed);
  std::vector<double> lower(instance.lower.begin(), instance.lower.end());
  std::vector<double> upper(instance.upper.begin(), instance.upper.end());
  CutOptions options;  // defaults = what solve_milp runs

  // First-round separators against the raw root relaxation.
  LpSolver solver(instance.model);
  const LpResult root = solver.solve(lower, upper);
  if (root.status == LpStatus::kOptimal) {
    for (const Cut& cut :
         generate_gomory_cuts(instance.model, solver, {}, lower, upper, options)) {
      expect_cut_valid(instance, cut, "gomory", seed);
    }
    for (const Cut& cut :
         generate_cover_cuts(instance.model, lower, upper, root.values, options)) {
      expect_cut_valid(instance, cut, "cover", seed);
    }
  }

  // The full loop's retained cuts (later rounds separate a point the earlier
  // cuts already moved, so these are not covered by the first-round check).
  const RootCutOutcome outcome =
      run_root_cut_loop(instance.model, lower, upper, LpOptions{}, options, CancelToken{});
  for (const Cut& cut : outcome.cuts) {
    expect_cut_valid(instance, cut, "retained", seed);
  }

  // A root that went infeasible under valid cuts proves integer
  // infeasibility; cross-check that claim against the enumeration.
  if (outcome.root_infeasible) {
    const int feasible = for_each_feasible_point(instance, [](const std::vector<double>&) {});
    EXPECT_EQ(feasible, 0) << "cut loop claims infeasible but seed " << seed
                           << " has integer-feasible points";
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, CutFuzz, ::testing::Range(0, 80));

// ---------------------------------------------------------------------------
// CutPool policy
// ---------------------------------------------------------------------------

Cut make_cut(std::vector<int> cols, std::vector<double> vals, double rhs,
             CutKind kind = CutKind::kGomory) {
  Cut cut;
  cut.kind = kind;
  cut.cols = std::move(cols);
  cut.vals = std::move(vals);
  cut.rhs = rhs;
  return cut;
}

TEST(CutPool, RejectsWeakAndParallelCandidates) {
  CutOptions options;
  options.min_violation = 1e-4;
  options.max_parallelism = 0.9;
  CutPool pool(options);
  const std::vector<double> point = {0.5, 0.5};

  // x0 <= 0 is violated by 0.5 at the point: accepted.
  EXPECT_TRUE(pool.add(make_cut({0}, {1.0}, 0.0), point));
  // x0 <= 1 is satisfied at the point: rejected (violation <= 0).
  EXPECT_FALSE(pool.add(make_cut({0}, {1.0}, 1.0), point));
  // 2 x0 <= 0.2 is parallel to the stored x0 <= 0 (cosine 1): rejected even
  // though it is violated.
  EXPECT_FALSE(pool.add(make_cut({0}, {2.0}, 0.2), point));
  // An orthogonal violated cut is accepted alongside.
  EXPECT_TRUE(pool.add(make_cut({1}, {1.0}, 0.0), point));
  EXPECT_EQ(pool.size(), 2u);
}

TEST(CutPool, TakeRoundOrdersByViolationAndFiltersParallel) {
  CutOptions options;
  options.max_cuts_per_round = 2;
  CutPool pool(options);
  const std::vector<double> point = {0.9, 0.4, 0.7};

  ASSERT_TRUE(pool.add(make_cut({0}, {1.0}, 0.0), point));  // violation 0.9
  ASSERT_TRUE(pool.add(make_cut({1}, {1.0}, 0.0), point));  // violation 0.4
  ASSERT_TRUE(pool.add(make_cut({2}, {1.0}, 0.0), point));  // violation 0.7

  const std::vector<Cut> round = pool.take_round(point);
  ASSERT_EQ(round.size(), 2u);  // capped by max_cuts_per_round
  EXPECT_EQ(round[0].cols[0], 0);  // most violated first
  EXPECT_EQ(round[1].cols[0], 2);
  EXPECT_EQ(pool.size(), 1u);  // the x1 cut stays pooled
}

TEST(CutPool, AgesOutCutsThatStopSeparating) {
  CutOptions options;
  options.max_age = 2;
  CutPool pool(options);
  const std::vector<double> point = {0.5};
  ASSERT_TRUE(pool.add(make_cut({0}, {1.0}, 0.0), point));

  // A point that satisfies the cut: take_round selects nothing, the cut
  // lingers and ages; it expires once its age reaches max_age.
  const std::vector<double> interior = {0.0};
  EXPECT_TRUE(pool.take_round(interior).empty());
  pool.age_round();  // age 1 < max_age: kept
  EXPECT_EQ(pool.size(), 1u);
  EXPECT_TRUE(pool.take_round(interior).empty());
  pool.age_round();  // age 2 == max_age: dropped
  EXPECT_EQ(pool.size(), 0u);
  EXPECT_EQ(pool.aged_out(), 1);
}

TEST(CutPool, ViolatedCutIsSelectedBeforeItExpires) {
  CutOptions options;
  options.max_age = 2;
  CutPool pool(options);
  const std::vector<double> point = {0.5};
  ASSERT_TRUE(pool.add(make_cut({0}, {1.0}, 0.0), point));
  pool.age_round();  // age 1 — one more idle round would drop it
  ASSERT_EQ(pool.size(), 1u);
  // Still violated at the current point, so the next round selects it
  // instead of letting it expire.
  const std::vector<Cut> round = pool.take_round(point);
  ASSERT_EQ(round.size(), 1u);
  EXPECT_EQ(pool.size(), 0u);
  EXPECT_EQ(pool.aged_out(), 0);
}

TEST(CutViolationAndParallelism, AreScaleFree) {
  const std::vector<double> point = {1.0, 1.0};
  const Cut a = make_cut({0, 1}, {1.0, 1.0}, 1.0);
  const Cut scaled = make_cut({0, 1}, {10.0, 10.0}, 10.0);
  EXPECT_NEAR(cut_violation(a, point), cut_violation(scaled, point), 1e-12);
  EXPECT_NEAR(cut_parallelism(a, scaled), 1.0, 1e-12);
  const Cut orthogonal = make_cut({0, 1}, {1.0, -1.0}, 0.0);
  EXPECT_NEAR(cut_parallelism(a, orthogonal), 0.0, 1e-12);
}

// ---------------------------------------------------------------------------
// LpSolver::append_rows
// ---------------------------------------------------------------------------

class AppendRows : public ::testing::TestWithParam<BasisKind> {};

/// Appending a row to a warm basis and reoptimizing must land on the same
/// optimum as a cold solve of a model that carried the row from the start.
TEST_P(AppendRows, WarmAppendMatchesColdSolveOfExtendedModel) {
  // max 3x + 2y  s.t.  x + y <= 4,  x, y in [0, 3]  ->  (3, 1), obj 11.
  Model base;
  const VarId x = base.add_continuous(0.0, 3.0, "x");
  const VarId y = base.add_continuous(0.0, 3.0, "y");
  base.add_constraint(1.0 * x + 1.0 * y, Relation::kLessEqual, 4.0);
  base.set_objective(3.0 * x + 2.0 * y, Sense::kMaximize);

  LpOptions lp_options;
  lp_options.basis = GetParam();
  const std::vector<double> lower = {0.0, 0.0};
  const std::vector<double> upper = {3.0, 3.0};

  LpSolver solver(base, lp_options);
  const LpResult before = solver.solve(lower, upper);
  ASSERT_EQ(before.status, LpStatus::kOptimal);
  EXPECT_NEAR(before.objective, 11.0, 1e-7);

  // Append 2x + y <= 5 (cuts off (3,1); new optimum (1, 3), obj 9).
  LpCutRow row;
  row.cols = {0, 1};
  row.vals = {2.0, 1.0};
  row.rhs = 5.0;
  ASSERT_TRUE(solver.append_rows({row}));
  EXPECT_EQ(solver.stats().rows_appended, 1);
  EXPECT_EQ(solver.row_count(), 2);
  const LpResult after = solver.resolve(lower, upper);
  ASSERT_EQ(after.status, LpStatus::kOptimal);

  Model extended;
  const VarId ex = extended.add_continuous(0.0, 3.0, "x");
  const VarId ey = extended.add_continuous(0.0, 3.0, "y");
  extended.add_constraint(1.0 * ex + 1.0 * ey, Relation::kLessEqual, 4.0);
  extended.add_constraint(2.0 * ex + 1.0 * ey, Relation::kLessEqual, 5.0);
  extended.set_objective(3.0 * ex + 2.0 * ey, Sense::kMaximize);
  const LpResult cold = solve_lp(extended, lp_options, &lower, &upper);
  ASSERT_EQ(cold.status, LpStatus::kOptimal);
  EXPECT_NEAR(after.objective, cold.objective, 1e-7);
  ASSERT_EQ(after.values.size(), 2u);
  EXPECT_NEAR(after.values[0], cold.values[0], 1e-7);
  EXPECT_NEAR(after.values[1], cold.values[1], 1e-7);
}

/// Several rows in one batch, including one that is slack at the optimum.
TEST_P(AppendRows, BatchAppendKeepsWarmPathUsable) {
  Model base;
  const VarId x = base.add_continuous(0.0, 10.0, "x");
  const VarId y = base.add_continuous(0.0, 10.0, "y");
  base.add_constraint(1.0 * x + 1.0 * y, Relation::kLessEqual, 12.0);
  base.set_objective(1.0 * x + 1.0 * y, Sense::kMaximize);

  LpOptions lp_options;
  lp_options.basis = GetParam();
  const std::vector<double> lower = {0.0, 0.0};
  const std::vector<double> upper = {10.0, 10.0};

  LpSolver solver(base, lp_options);
  ASSERT_EQ(solver.solve(lower, upper).status, LpStatus::kOptimal);

  LpCutRow tight;   // x + y <= 7: binding at the new optimum
  tight.cols = {0, 1};
  tight.vals = {1.0, 1.0};
  tight.rhs = 7.0;
  LpCutRow loose;   // x <= 9: never binding
  loose.cols = {0};
  loose.vals = {1.0};
  loose.rhs = 9.0;
  ASSERT_TRUE(solver.append_rows({tight, loose}));
  EXPECT_EQ(solver.stats().rows_appended, 2);
  EXPECT_EQ(solver.row_count(), 3);

  const LpResult after = solver.resolve(lower, upper);
  ASSERT_EQ(after.status, LpStatus::kOptimal);
  EXPECT_NEAR(after.objective, 7.0, 1e-7);

  // The basis survives the append: a subsequent bound tightening still
  // reoptimizes warm (this is the cut loop's steady-state pattern).
  const std::vector<double> tighter_upper = {2.0, 10.0};
  const LpResult warm = solver.resolve(lower, tighter_upper);
  ASSERT_EQ(warm.status, LpStatus::kOptimal);
  EXPECT_NEAR(warm.objective, 7.0, 1e-7);  // y picks up the slack
  EXPECT_TRUE(warm.warm_started);
}

INSTANTIATE_TEST_SUITE_P(Bases, AppendRows,
                         ::testing::Values(BasisKind::kDense, BasisKind::kSparseLu),
                         [](const ::testing::TestParamInfo<BasisKind>& info) {
                           return info.param == BasisKind::kDense ? "dense" : "sparse";
                         });

}  // namespace
}  // namespace fsyn::ilp
