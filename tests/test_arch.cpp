// Tests for the valve-centered architecture: device type enumeration
// (paper Section 3.1), instance geometry (Fig. 5/6), placements and chip
// sizing.
#include <gtest/gtest.h>

#include <set>

#include "arch/architecture.hpp"
#include "arch/device_types.hpp"
#include "assay/benchmarks.hpp"
#include "sched/list_scheduler.hpp"
#include "util/error.hpp"

namespace fsyn::arch {
namespace {

TEST(DeviceTypes, Volume8GivesThePaperThreeTypes) {
  // Paper Section 3.2: type 1 is 3x3, type 2 is 2x4, type 3 is 4x2.
  const auto types = device_types_for_volume(8);
  const std::set<DeviceType> expected{{3, 3}, {2, 4}, {4, 2}};
  EXPECT_EQ(std::set<DeviceType>(types.begin(), types.end()), expected);
  EXPECT_EQ(types.front(), (DeviceType{3, 3}));  // squarest first
}

class DeviceVolume : public ::testing::TestWithParam<int> {};

TEST_P(DeviceVolume, AllTypesHaveMatchingRingLength) {
  const int volume = GetParam();
  const auto types = device_types_for_volume(volume);
  EXPECT_FALSE(types.empty());
  for (const DeviceType& t : types) {
    EXPECT_EQ(t.volume(), volume) << t.width << "x" << t.height;
    EXPECT_EQ(t.pump_valve_count(), volume);
    EXPECT_GE(t.width, 2);
    EXPECT_GE(t.height, 2);
    // The instance ring must physically contain `volume` cells.
    const DeviceInstance inst{t, Point{0, 0}};
    EXPECT_EQ(static_cast<int>(inst.pump_cells().size()), volume);
  }
}

INSTANTIATE_TEST_SUITE_P(PaperVolumes, DeviceVolume, ::testing::Values(4, 6, 8, 10, 12, 16));

TEST(DeviceTypes, CountsPerVolumeMatchGeometry) {
  EXPECT_EQ(device_types_for_volume(4).size(), 1u);   // 2x2
  EXPECT_EQ(device_types_for_volume(6).size(), 2u);   // 2x3, 3x2
  EXPECT_EQ(device_types_for_volume(8).size(), 3u);   // 2x4, 4x2, 3x3
  EXPECT_EQ(device_types_for_volume(10).size(), 4u);  // 2x5, 5x2, 3x4, 4x3
}

TEST(DeviceTypes, RejectsInvalidVolume) {
  EXPECT_THROW(device_types_for_volume(7), Error);
  EXPECT_THROW(device_types_for_volume(2), Error);
  EXPECT_THROW(device_types_for_volume(0), Error);
}

TEST(DeviceTypes, DeduplicatedUnion) {
  const auto all = device_types_for_volumes({8, 8, 4});
  EXPECT_EQ(all.size(), 4u);  // 3 types for 8 + 1 for 4
}

TEST(DeviceInstance, FootprintAndInterior) {
  const DeviceInstance inst{DeviceType{3, 3}, Point{2, 1}};
  EXPECT_EQ(inst.footprint(), (Rect{2, 1, 3, 3}));
  const auto interior = inst.interior_cells();
  ASSERT_EQ(interior.size(), 1u);
  EXPECT_EQ(interior[0], (Point{3, 2}));
  EXPECT_EQ(DeviceInstance({2, 4}, Point{0, 0}).interior_cells().size(), 0u);
}

// Fig. 5(d): a 2x4 and a 4x2 mixer can share the same area with completely
// different pump valves only where the rings do not intersect; verify ring
// disjointness logic on the paper's own example region.
TEST(DeviceInstance, Fig5OverlappingOrientations) {
  const DeviceInstance horizontal{DeviceType{4, 2}, Point{0, 0}};
  const DeviceInstance vertical{DeviceType{2, 4}, Point{0, 0}};
  const auto ring_h = horizontal.pump_cells();
  const auto ring_v = vertical.pump_cells();
  EXPECT_EQ(ring_h.size(), 8u);
  EXPECT_EQ(ring_v.size(), 8u);
  // They overlap in area...
  EXPECT_TRUE(horizontal.footprint().overlaps(vertical.footprint()));
  // ...and share exactly the 2x2 corner cells.
  std::set<Point> shared;
  for (const Point& p : ring_h) {
    if (std::find(ring_v.begin(), ring_v.end(), p) != ring_v.end()) shared.insert(p);
  }
  EXPECT_EQ(shared, (std::set<Point>{{0, 0}, {1, 0}, {0, 1}, {1, 1}}));
}

TEST(Architecture, DefaultPortsOnRightEdge) {
  const Architecture chip(9, 9);
  EXPECT_EQ(chip.virtual_valve_count(), 81);
  ASSERT_EQ(chip.ports().size(), 3u);
  EXPECT_TRUE(chip.input_port(0).is_input);
  EXPECT_TRUE(chip.input_port(1).is_input);
  EXPECT_FALSE(chip.output_port().is_input);
  for (const ChipPort& port : chip.ports()) {
    EXPECT_EQ(port.cell.x, 8);  // right edge
  }
}

TEST(Architecture, SetPortsValidatesEdges) {
  Architecture chip(8, 8);
  EXPECT_THROW(chip.set_ports({ChipPort{"bad", Point{3, 3}, true}}), Error);
  EXPECT_THROW(chip.set_ports({ChipPort{"oob", Point{9, 0}, true}}), Error);
  EXPECT_NO_THROW(chip.set_ports({ChipPort{"in", Point{0, 5}, true},
                                  ChipPort{"out", Point{7, 2}, false}}));
  EXPECT_THROW(chip.input_port(1), Error);
}

TEST(Architecture, PlacementsCoverAllValidOrigins) {
  const Architecture chip(6, 5);
  const auto origins = chip.placements_for(DeviceType{3, 2});
  EXPECT_EQ(origins.size(), static_cast<std::size_t>((6 - 3 + 1) * (5 - 2 + 1)));
  for (const Point& o : origins) {
    EXPECT_TRUE(chip.fits(DeviceInstance{DeviceType{3, 2}, o}));
  }
  EXPECT_FALSE(chip.fits(DeviceInstance{DeviceType{3, 2}, Point{4, 0}}));
  EXPECT_FALSE(chip.fits(DeviceInstance{DeviceType{3, 2}, Point{0, 4}}));
}

TEST(Architecture, TooSmallMatrixRejected) {
  EXPECT_THROW(Architecture(3, 8), Error);
  EXPECT_THROW(Architecture(8, 2), Error);
}

TEST(Architecture, SizedForBenchmarksIsReasonable) {
  for (const auto& name : assay::benchmark_names()) {
    const auto g = assay::make_benchmark(name);
    const auto s = sched::schedule_asap(g);
    const Architecture chip = Architecture::sized_for(g, s);
    EXPECT_GE(chip.width(), 8) << name;
    EXPECT_LE(chip.width(), 40) << name;
    EXPECT_EQ(chip.width(), chip.height()) << name;
  }
}

TEST(Architecture, SizedForGrowsWithConcurrency) {
  const auto g = assay::make_interpolating_dilution();
  // ASAP runs everything concurrently; a tight policy serializes heavily.
  const Architecture wide = Architecture::sized_for(g, sched::schedule_asap(g));
  const Architecture narrow = Architecture::sized_for(
      g, sched::schedule_with_policy(g, sched::make_policy(g, 0)));
  EXPECT_GE(wide.width(), narrow.width());
}

}  // namespace
}  // namespace fsyn::arch
