// Tests for the assay module: graph construction/validation, the DSL
// parser round-trip, and the Table-1 head counts of all four benchmarks.
#include <gtest/gtest.h>

#include <map>

#include "assay/benchmarks.hpp"
#include "assay/parser.hpp"
#include "assay/sequencing_graph.hpp"
#include "util/error.hpp"

namespace fsyn::assay {
namespace {

Operation input_op(const std::string& name) {
  Operation op;
  op.kind = OpKind::kInput;
  op.name = name;
  return op;
}

TEST(SequencingGraph, AddAndQuery) {
  SequencingGraph g("demo");
  const OpId a = g.add_operation(input_op("a"));
  const OpId b = g.add_operation(input_op("b"));
  Operation mix;
  mix.kind = OpKind::kMix;
  mix.name = "m";
  mix.parents = {a, b};
  mix.volume = 8;
  mix.duration = 6;
  const OpId m = g.add_operation(std::move(mix));

  EXPECT_EQ(g.size(), 3);
  EXPECT_EQ(g.mixing_count(), 1);
  EXPECT_EQ(g.op(m).parents.size(), 2u);
  ASSERT_EQ(g.children(a).size(), 1u);
  EXPECT_EQ(g.children(a)[0], m);
  EXPECT_TRUE(g.children(m).empty());
  EXPECT_NO_THROW(g.validate());
}

TEST(SequencingGraph, UnknownParentRejected) {
  SequencingGraph g;
  Operation mix;
  mix.kind = OpKind::kMix;
  mix.parents = {OpId{5}};
  mix.volume = 8;
  mix.duration = 1;
  EXPECT_THROW(g.add_operation(std::move(mix)), Error);
}

TEST(SequencingGraph, ValidationCatchesBadOps) {
  {
    SequencingGraph g;
    Operation mix;  // mix with no parents
    mix.kind = OpKind::kMix;
    mix.name = "m";
    mix.volume = 8;
    mix.duration = 3;
    g.add_operation(std::move(mix));
    EXPECT_THROW(g.validate(), Error);
  }
  {
    SequencingGraph g;
    const OpId a = g.add_operation(input_op("a"));
    Operation mix;  // odd volume
    mix.kind = OpKind::kMix;
    mix.name = "m";
    mix.parents = {a};
    mix.volume = 7;
    mix.duration = 3;
    g.add_operation(std::move(mix));
    EXPECT_THROW(g.validate(), Error);
  }
  {
    SequencingGraph g;
    const OpId a = g.add_operation(input_op("a"));
    Operation mix;  // ratio length mismatch
    mix.kind = OpKind::kMix;
    mix.name = "m";
    mix.parents = {a};
    mix.ratio = {1, 3};
    mix.volume = 8;
    mix.duration = 3;
    g.add_operation(std::move(mix));
    EXPECT_THROW(g.validate(), Error);
  }
}

TEST(SequencingGraph, TopologicalOrderRespectsParents) {
  const SequencingGraph g = make_pcr();
  const auto order = g.topological_order();
  std::map<int, int> position;
  for (std::size_t i = 0; i < order.size(); ++i) position[order[i].index] = static_cast<int>(i);
  for (const Operation& op : g.operations()) {
    for (const OpId parent : op.parents) {
      EXPECT_LT(position[parent.index], position[op.id.index]);
    }
  }
}

TEST(Parser, ParsesFullExample) {
  const SequencingGraph g = parse_assay(R"(
# 1:3 dilution demo
assay dilution-demo
input  sample
input  buffer
mix    dilute volume 8 duration 6 from sample:1 buffer:3
detect read duration 4 from dilute
output waste from read
)");
  EXPECT_EQ(g.name(), "dilution-demo");
  EXPECT_EQ(g.size(), 5);
  EXPECT_EQ(g.mixing_count(), 1);
  const Operation& mix = g.op(OpId{2});
  EXPECT_EQ(mix.volume, 8);
  EXPECT_EQ(mix.duration, 6);
  ASSERT_EQ(mix.ratio.size(), 2u);
  EXPECT_EQ(mix.ratio[0], 1);
  EXPECT_EQ(mix.ratio[1], 3);
}

TEST(Parser, ErrorsCarryLineNumbers) {
  try {
    parse_assay("assay x\nmix broken volume 8\n");
    FAIL() << "must throw";
  } catch (const Error& e) {
    EXPECT_NE(std::string(e.what()).find("line 2"), std::string::npos);
  }
}

TEST(Parser, RejectsUnknownParentAndDuplicates) {
  EXPECT_THROW(parse_assay("mix m volume 8 duration 3 from ghost\n"), Error);
  EXPECT_THROW(parse_assay("input a\ninput a\n"), Error);
  EXPECT_THROW(parse_assay("frobnicate x\n"), Error);
}

TEST(Parser, RoundTripsThroughText) {
  for (const std::string& name : benchmark_names()) {
    const SequencingGraph original = make_benchmark(name);
    const SequencingGraph reparsed = parse_assay(to_assay_text(original));
    ASSERT_EQ(reparsed.size(), original.size()) << name;
    for (int i = 0; i < original.size(); ++i) {
      const Operation& a = original.op(OpId{i});
      const Operation& b = reparsed.op(OpId{i});
      EXPECT_EQ(a.name, b.name);
      EXPECT_EQ(a.kind, b.kind);
      EXPECT_EQ(a.parents, b.parents);
      EXPECT_EQ(a.volume, b.volume) << name << " op " << a.name;
      EXPECT_EQ(a.duration, b.duration);
    }
  }
}

// ---- Table-1 head counts: #op (total and mixing) per benchmark ----

struct BenchmarkSpec {
  const char* name;
  int total_ops;
  int mixing_ops;
  std::map<int, int> volumes;
};

class BenchmarkCounts : public ::testing::TestWithParam<BenchmarkSpec> {};

TEST_P(BenchmarkCounts, MatchesTable1) {
  const BenchmarkSpec& spec = GetParam();
  const SequencingGraph g = make_benchmark(spec.name);
  EXPECT_NO_THROW(g.validate());
  EXPECT_EQ(g.size(), spec.total_ops);
  EXPECT_EQ(g.mixing_count(), spec.mixing_ops);
  std::map<int, int> histogram;
  for (const Operation& op : g.operations()) {
    if (op.kind == OpKind::kMix) ++histogram[op.volume];
  }
  EXPECT_EQ(histogram, spec.volumes);
}

INSTANTIATE_TEST_SUITE_P(
    AllCases, BenchmarkCounts,
    ::testing::Values(
        BenchmarkSpec{"pcr", 15, 7, {{4, 1}, {8, 4}, {10, 2}}},
        BenchmarkSpec{"mixing_tree", 37, 18, {{4, 2}, {6, 4}, {8, 5}, {10, 7}}},
        BenchmarkSpec{"interpolating_dilution", 71, 35, {{4, 5}, {6, 9}, {8, 9}, {10, 12}}},
        BenchmarkSpec{"exponential_dilution", 103, 47, {{4, 6}, {6, 16}, {8, 13}, {10, 12}}}),
    [](const auto& info) { return std::string(info.param.name); });

TEST(Benchmarks, UnknownNameThrows) { EXPECT_THROW(make_benchmark("nope"), Error); }

TEST(Benchmarks, PcrTreeMatchesFig9Structure) {
  const SequencingGraph g = make_pcr();
  auto find = [&](const std::string& name) -> const Operation& {
    for (const Operation& op : g.operations()) {
      if (op.name == name) return op;
    }
    throw Error("missing op " + name);
  };
  const Operation& o5 = find("o5");
  const Operation& o6 = find("o6");
  const Operation& o7 = find("o7");
  EXPECT_EQ(o5.parents, (std::vector<OpId>{find("o1").id, find("o2").id}));
  EXPECT_EQ(o6.parents, (std::vector<OpId>{find("o3").id, find("o4").id}));
  EXPECT_EQ(o7.parents, (std::vector<OpId>{o5.id, o6.id}));
}

}  // namespace
}  // namespace fsyn::assay
