// Tests for src/rel: closed-form cross-check of the Monte Carlo estimator,
// determinism in the seed at any thread count, cancellation, fault plans,
// degraded re-synthesis (the mapper must avoid injected dead valves, the
// ILP warm-starts from the repaired healthy placement), and the stored
// mapping round trip that feeds `flowsynth reliability --in`.
#include <gtest/gtest.h>

#include <cmath>
#include <thread>

#include "assay/benchmarks.hpp"
#include "rel/engine.hpp"
#include "report/result_io.hpp"
#include "sched/list_scheduler.hpp"
#include "svc/thread_pool.hpp"

namespace fsyn::rel {
namespace {

/// Five valves with hand-picked loads; ids/cells mimic a 4-wide matrix.
std::vector<sim::ValveWear> make_valves() {
  std::vector<sim::ValveWear> valves(5);
  valves[0] = {0, {0, 0}, 40, 0};
  valves[1] = {1, {1, 0}, 44, 0};
  valves[2] = {2, {2, 0}, 46, 2};
  valves[3] = {3, {3, 0}, 0, 4};
  valves[4] = {5, {1, 1}, 0, 6};
  return valves;
}

TEST(LifetimeModel, ShapeOneMatchesSeriesSystemClosedForm) {
  // With Weibull shape 1 every valve's TTF is exponential with mean
  // characteristic/load, so the chip (a series system: first failure kills
  // it) is exponential with rate = sum of load_i / characteristic_i.
  MonteCarloOptions options;
  options.trials = 40000;
  options.seed = 42;
  options.model.pump = {5000.0, 1.0};
  options.model.control = {20000.0, 1.0};

  const std::vector<sim::ValveWear> valves = make_valves();
  double rate = 0.0;
  for (const sim::ValveWear& valve : valves) {
    rate += valve.total() / options.model.params_for(valve.role()).characteristic_actuations;
  }
  const double closed_form = 1.0 / rate;

  const LifetimeEstimate estimate = estimate_lifetime(valves, options);
  EXPECT_NEAR(estimate.mttf_runs, closed_form, 0.05 * closed_form);
  // Median of an exponential is MTTF * ln 2.
  EXPECT_NEAR(estimate.p50_runs, closed_form * std::log(2.0), 0.08 * closed_form);
}

TEST(MonteCarlo, BitIdenticalAcrossThreadCountsAndPools) {
  const std::vector<sim::ValveWear> valves = make_valves();
  MonteCarloOptions options;
  options.trials = 4000;
  options.seed = 2015;
  options.block_size = 64;

  const LifetimeEstimate serial = estimate_lifetime(valves, options);

  options.threads = 4;
  const LifetimeEstimate threaded = estimate_lifetime(valves, options);

  svc::ThreadPool pool(3);
  options.threads = 1;
  options.pool = &pool;
  const LifetimeEstimate pooled = estimate_lifetime(valves, options);

  // Per-trial seeding + disjoint writes + trial-order reduction make the
  // estimate a pure function of (valves, trials, seed).
  for (const LifetimeEstimate* other : {&threaded, &pooled}) {
    EXPECT_EQ(serial.mttf_runs, other->mttf_runs);
    EXPECT_EQ(serial.p10_runs, other->p10_runs);
    EXPECT_EQ(serial.p50_runs, other->p50_runs);
    EXPECT_EQ(serial.p90_runs, other->p90_runs);
    EXPECT_EQ(serial.min_runs, other->min_runs);
    EXPECT_EQ(serial.max_runs, other->max_runs);
    ASSERT_EQ(serial.first_failures.size(), other->first_failures.size());
    for (std::size_t i = 0; i < serial.first_failures.size(); ++i) {
      EXPECT_EQ(serial.first_failures[i].valve_id, other->first_failures[i].valve_id);
      EXPECT_EQ(serial.first_failures[i].count, other->first_failures[i].count);
    }
  }

  MonteCarloOptions reseeded = options;
  reseeded.pool = nullptr;
  reseeded.seed = 7;
  EXPECT_NE(serial.mttf_runs, estimate_lifetime(valves, reseeded).mttf_runs);
}

TEST(MonteCarlo, FirstFailureHistogramCountsSumToTrials) {
  MonteCarloOptions options;
  options.trials = 1000;
  const LifetimeEstimate estimate = estimate_lifetime(make_valves(), options);
  int total = 0;
  for (const FirstFailure& bar : estimate.first_failures) {
    EXPECT_GT(bar.count, 0);
    total += bar.count;
  }
  EXPECT_EQ(total, options.trials);
  // Histogram is sorted by descending count.
  for (std::size_t i = 1; i < estimate.first_failures.size(); ++i) {
    EXPECT_GE(estimate.first_failures[i - 1].count, estimate.first_failures[i].count);
  }
  // Pump valves dominate: the top attribution must be a pump cell.
  ASSERT_FALSE(estimate.first_failures.empty());
  EXPECT_EQ(estimate.first_failures.front().role, sim::ValveRole::kPump);
}

TEST(MonteCarlo, CancellationThrowsCancelledError) {
  CancelSource source;
  source.cancel();
  MonteCarloOptions options;
  options.trials = 100000;
  options.cancel = source.token();
  EXPECT_THROW(estimate_lifetime(make_valves(), options), CancelledError);
}

TEST(MonteCarlo, MidFlightCancellationStopsPooledRun) {
  CancelSource source;
  MonteCarloOptions options;
  options.trials = 2000000;  // big enough that cancellation lands mid-run
  options.block_size = 128;
  options.threads = 4;
  options.cancel = source.token();
  std::thread canceller([&] { source.cancel(); });
  try {
    (void)estimate_lifetime(make_valves(), options);
    // The cancel may land after the last trial; either outcome is legal.
  } catch (const CancelledError&) {
  }
  canceller.join();
}

TEST(MonteCarloStress, ConcurrentEstimatesShareOnePool) {
  // Several estimator calls racing on one pool (the TSan configuration):
  // results must still be the serial ones.
  svc::ThreadPool pool(4);
  MonteCarloOptions options;
  options.trials = 2000;
  options.block_size = 32;
  const LifetimeEstimate expected = estimate_lifetime(make_valves(), options);

  std::vector<std::thread> callers;
  std::vector<double> mttf(4, 0.0);
  for (int i = 0; i < 4; ++i) {
    callers.emplace_back([&, i] {
      MonteCarloOptions pooled = options;
      pooled.pool = &pool;
      mttf[static_cast<std::size_t>(i)] =
          estimate_lifetime(make_valves(), pooled).mttf_runs;
    });
  }
  for (std::thread& caller : callers) caller.join();
  for (const double value : mttf) EXPECT_EQ(value, expected.mttf_runs);
}

TEST(FaultPlanTest, ParseAndRoundTrip) {
  const FaultPlan plan = FaultPlan::parse("4,5@120:closed;6,5:open;1,2@7");
  ASSERT_EQ(plan.events.size(), 3u);
  EXPECT_EQ(plan.events[0].valve, (Point{4, 5}));
  EXPECT_EQ(plan.events[0].at_run, 120);
  EXPECT_EQ(plan.events[0].mode, FaultMode::kStuckClosed);
  EXPECT_EQ(plan.events[1].mode, FaultMode::kStuckOpen);
  EXPECT_EQ(plan.events[1].at_run, 0);
  EXPECT_EQ(plan.events[2].valve, (Point{1, 2}));
  EXPECT_EQ(plan.to_text(), "4,5@120:closed;6,5@0:open;1,2@7:closed");
  EXPECT_EQ(FaultPlan::parse(plan.to_text()).to_text(), plan.to_text());

  EXPECT_THROW(FaultPlan::parse(""), Error);
  EXPECT_THROW(FaultPlan::parse("4"), Error);
  EXPECT_THROW(FaultPlan::parse("4,5:ajar"), Error);
}

TEST(FaultPlanTest, TopWearPlanPicksBusiestValves) {
  sim::ActuationLedger ledger;
  ledger.pump = Grid<int>(3, 3, 0);
  ledger.control = Grid<int>(3, 3, 0);
  ledger.pump.at({1, 1}) = 44;
  ledger.pump.at({2, 1}) = 40;
  ledger.control.at({0, 2}) = 6;

  const FaultPlan plan = top_wear_plan(ledger, 2);
  ASSERT_EQ(plan.events.size(), 2u);
  EXPECT_EQ(plan.events[0].valve, (Point{1, 1}));
  EXPECT_EQ(plan.events[1].valve, (Point{2, 1}));
  // Expected wear-out run: characteristic life / per-run load.
  EXPECT_EQ(plan.events[0].at_run, static_cast<int>(5000.0 / 44));

  // Asking for more faults than actuated valves clamps gracefully.
  EXPECT_EQ(top_wear_plan(ledger, 10).events.size(), 3u);
}

class EngineTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    graph_ = new assay::SequencingGraph(assay::make_benchmark("pcr"));
    schedule_ = new sched::Schedule(
        sched::schedule_with_policy(*graph_, sched::make_policy(*graph_, 0)));
    healthy_ = new synth::SynthesisResult(synth::synthesize(*graph_, *schedule_));
  }
  static void TearDownTestSuite() {
    delete healthy_;
    delete schedule_;
    delete graph_;
    healthy_ = nullptr;
    schedule_ = nullptr;
    graph_ = nullptr;
  }
  static assay::SequencingGraph* graph_;
  static sched::Schedule* schedule_;
  static synth::SynthesisResult* healthy_;
};

assay::SequencingGraph* EngineTest::graph_ = nullptr;
sched::Schedule* EngineTest::schedule_ = nullptr;
synth::SynthesisResult* EngineTest::healthy_ = nullptr;

TEST_F(EngineTest, FaultInjectionRemapsAroundDeadValve) {
  // Fail the top-wear valve of the healthy mapping; the degraded
  // re-synthesis must produce a mapping in which that valve carries no
  // load (it is excluded from every footprint and from routing).
  const FaultPlan plan = top_wear_plan(healthy_->ledger_setting1, 1);
  ASSERT_EQ(plan.events.size(), 1u);
  const Point dead = plan.events[0].valve;

  ReliabilityOptions options;
  options.monte_carlo.trials = 300;
  options.faults = plan;
  const ReliabilityReport report = analyze(*graph_, *schedule_, *healthy_, options);

  ASSERT_EQ(report.rounds.size(), 1u);
  const RepairRound& round = report.rounds[0];
  EXPECT_TRUE(round.feasible);
  EXPECT_EQ(round.verdict, "remapped");
  EXPECT_GT(round.vs1_max, 0);
  ASSERT_TRUE(round.lifetime.has_value());
  // The failure attribution of the repaired chip covers every loaded valve,
  // so the dead cell must be absent.
  for (const FirstFailure& bar : round.lifetime->first_failures) {
    EXPECT_FALSE(bar.cell == dead);
  }
  // Repair extends service: expected runs with repair adds the repaired
  // mapping's MTTF on top of the healthy MTTF.
  EXPECT_GT(report.expected_runs_with_repair, report.expected_runs_no_repair);
  EXPECT_NEAR(report.expected_runs_with_repair,
              report.healthy.mttf_runs + round.lifetime->mttf_runs, 1e-9);
}

TEST_F(EngineTest, IlpRepairWarmStartsFromHealthySolution) {
  ReliabilityOptions options;
  options.monte_carlo.trials = 100;
  options.inject_top = 1;
  options.synthesis.mapper = synth::MapperKind::kIlp;
  options.synthesis.ilp.time_limit_seconds = 5.0;
  const ReliabilityReport report = analyze(*graph_, *schedule_, *healthy_, options);

  ASSERT_EQ(report.rounds.size(), 1u);
  EXPECT_TRUE(report.rounds[0].feasible);
  // The healthy placement minus the device over the dead valve is still
  // repairable on the pcr chip, so the ILP must have started warm.
  EXPECT_TRUE(report.rounds[0].warm_started);
}

TEST_F(EngineTest, DynamicMappingOutlivesStaticBaseline) {
  ReliabilityOptions options;
  options.monte_carlo.trials = 1000;
  options.compare_static = true;
  const ReliabilityReport report = analyze(*graph_, *schedule_, *healthy_, options);

  ASSERT_TRUE(report.static_baseline.has_value());
  EXPECT_GT(report.static_total_valves, 0);
  EXPECT_GT(report.static_max_actuations, 0);
  // The paper's claim as a lifetime statement: spreading actuations across
  // the matrix beats dedicated devices' fixed pump trios.
  EXPECT_GT(report.healthy.mttf_runs, report.static_baseline->mttf_runs);
}

TEST_F(EngineTest, ReportJsonIsBitIdenticalWithoutTiming) {
  ReliabilityOptions options;
  options.monte_carlo.trials = 200;
  options.inject_top = 1;
  options.compare_static = true;
  const std::string a = analyze(*graph_, *schedule_, *healthy_, options).to_json();
  const std::string b = analyze(*graph_, *schedule_, *healthy_, options).to_json();
  EXPECT_EQ(a, b);
  EXPECT_NE(a.find("\"format\": \"flowsynth-reliability-v1\""), std::string::npos);
  EXPECT_EQ(a.find("trials_per_second"), std::string::npos);

  const std::string timed =
      analyze(*graph_, *schedule_, *healthy_, options).to_json(/*include_timing=*/true);
  EXPECT_NE(timed.find("trials_per_second"), std::string::npos);
  EXPECT_NE(timed.find("resynthesis_latency"), std::string::npos);
}

TEST_F(EngineTest, StoredResultRoundTripsThroughJson) {
  report::StoredResult stored;
  stored.assay = "pcr";
  stored.policy_increments = 0;
  stored.asap = false;
  stored.seed = 2015;
  stored.result = *healthy_;

  const std::string json = report::stored_result_to_json(stored);
  const report::StoredResult loaded = report::stored_result_from_json(json);
  EXPECT_EQ(loaded.assay, stored.assay);
  EXPECT_EQ(loaded.seed, stored.seed);
  EXPECT_EQ(loaded.result.chip_width, healthy_->chip_width);
  EXPECT_EQ(loaded.result.vs1_max, healthy_->vs1_max);
  EXPECT_EQ(loaded.result.valve_count, healthy_->valve_count);
  ASSERT_EQ(loaded.result.placement.size(), healthy_->placement.size());
  for (std::size_t i = 0; i < loaded.result.placement.size(); ++i) {
    EXPECT_EQ(loaded.result.placement[i].origin, healthy_->placement[i].origin);
  }
  ASSERT_EQ(loaded.result.routing.paths.size(), healthy_->routing.paths.size());

  // Serialize → parse → serialize is a fixed point: the ledgers, metrics
  // and paths survive exactly, so a reliability run over the loaded result
  // equals one over the original.
  EXPECT_EQ(report::stored_result_to_json(loaded), json);

  MonteCarloOptions mc;
  mc.trials = 500;
  EXPECT_EQ(estimate_lifetime(loaded.result.ledger_setting1, mc).mttf_runs,
            estimate_lifetime(healthy_->ledger_setting1, mc).mttf_runs);
}

}  // namespace
}  // namespace fsyn::rel
