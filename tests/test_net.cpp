// Tests for the HTTP front-end: message parsing, routing, admission
// control, the crash-safe journal, wire-spec validation, trace-context
// propagation (traceparent in, trace ids out through SSE / status / the
// journal), Prometheus exposition, and loopback end-to-end flows against a
// real server on an ephemeral port (submit / status / SSE stream / cancel
// / overload / malformed-request fuzz / journal crash recovery).
#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <chrono>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <random>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "assay/benchmarks.hpp"
#include "net/admission.hpp"
#include "net/api.hpp"
#include "net/client.hpp"
#include "net/http.hpp"
#include "net/job_manager.hpp"
#include "net/journal.hpp"
#include "net/router.hpp"
#include "net/server.hpp"
#include "net/wire.hpp"
#include "obs/histogram.hpp"
#include "obs/prometheus.hpp"
#include "obs/trace_context.hpp"
#include "report/result_io.hpp"
#include "sched/list_scheduler.hpp"
#include "synth/synthesis.hpp"
#include "util/json.hpp"

namespace fsyn::net {
namespace {

// ---------------------------------------------------------------- parser

TEST(HttpParser, ParsesSimpleGet) {
  HttpRequestParser parser;
  ASSERT_EQ(ParseStatus::kComplete,
            parser.feed("GET /healthz HTTP/1.1\r\nHost: x\r\n\r\n"));
  EXPECT_EQ("GET", parser.request().method);
  EXPECT_EQ("/healthz", parser.request().target);
  EXPECT_TRUE(parser.request().keep_alive);
  ASSERT_NE(nullptr, parser.request().header("host"));  // case-insensitive
}

TEST(HttpParser, IncrementalFeed) {
  HttpRequestParser parser;
  EXPECT_EQ(ParseStatus::kNeedMore, parser.feed("GET / HT"));
  EXPECT_EQ(ParseStatus::kNeedMore, parser.feed("TP/1.1\r\nHost: x\r\n"));
  EXPECT_EQ(ParseStatus::kComplete, parser.feed("\r\n"));
}

TEST(HttpParser, ContentLengthBody) {
  HttpRequestParser parser;
  ASSERT_EQ(ParseStatus::kComplete,
            parser.feed("POST /v1/jobs HTTP/1.1\r\nContent-Length: 5\r\n\r\nhello"));
  EXPECT_EQ("hello", parser.request().body);
}

TEST(HttpParser, PipelinedRequests) {
  HttpRequestParser parser;
  ASSERT_EQ(ParseStatus::kComplete,
            parser.feed("GET /a HTTP/1.1\r\n\r\nGET /b HTTP/1.1\r\n\r\n"));
  EXPECT_EQ("/a", parser.request().target);
  parser.reset();
  ASSERT_EQ(ParseStatus::kComplete, parser.advance());
  EXPECT_EQ("/b", parser.request().target);
}

TEST(HttpParser, Http10DefaultsToClose) {
  HttpRequestParser parser;
  ASSERT_EQ(ParseStatus::kComplete, parser.feed("GET / HTTP/1.0\r\n\r\n"));
  EXPECT_FALSE(parser.request().keep_alive);
}

TEST(HttpParser, RejectsOversizedBody) {
  HttpRequestParser parser;
  EXPECT_EQ(ParseStatus::kError,
            parser.feed("POST / HTTP/1.1\r\nContent-Length: 99999999\r\n\r\n"));
  EXPECT_EQ(413, parser.error_status());
}

TEST(HttpParser, RejectsOversizedHeaders) {
  HttpRequestParser parser;
  std::string huge = "GET / HTTP/1.1\r\n";
  huge += "X-Pad: " + std::string(32 * 1024, 'a') + "\r\n\r\n";
  EXPECT_EQ(ParseStatus::kError, parser.feed(huge));
  EXPECT_EQ(431, parser.error_status());
}

TEST(HttpParser, RejectsTransferEncodingRequests) {
  HttpRequestParser parser;
  EXPECT_EQ(ParseStatus::kError,
            parser.feed("POST / HTTP/1.1\r\nTransfer-Encoding: chunked\r\n\r\n"));
  EXPECT_EQ(501, parser.error_status());
}

TEST(HttpParser, RejectsPostWithoutLength) {
  HttpRequestParser parser;
  EXPECT_EQ(ParseStatus::kError, parser.feed("POST / HTTP/1.1\r\n\r\n"));
  EXPECT_EQ(411, parser.error_status());
}

TEST(HttpParser, RejectsGarbage) {
  HttpRequestParser parser;
  EXPECT_EQ(ParseStatus::kError, parser.feed("\x01\x02 nonsense\r\n\r\n"));
  EXPECT_EQ(400, parser.error_status());
}

TEST(HttpParser, RejectsUnknownVersion) {
  HttpRequestParser parser;
  EXPECT_EQ(ParseStatus::kError, parser.feed("GET / HTTP/2.0\r\n\r\n"));
  EXPECT_EQ(505, parser.error_status());
}

TEST(HttpParser, QueryParamAndPath) {
  HttpRequestParser parser;
  ASSERT_EQ(ParseStatus::kComplete,
            parser.feed("GET /metrics?format=prometheus&empty=&x=1 HTTP/1.1\r\n\r\n"));
  const HttpRequest& request = parser.request();
  EXPECT_EQ("/metrics", request.path());
  EXPECT_EQ("prometheus", request.query_param("format"));
  EXPECT_EQ("1", request.query_param("x"));
  EXPECT_EQ("", request.query_param("empty"));
  EXPECT_EQ("", request.query_param("missing"));
  EXPECT_EQ("", request.query_param("form"));  // no prefix matching
}

TEST(ChunkedDecoder, RoundTripsChunkEncode) {
  const std::string payload = "hello, chunked world";
  std::string encoded = chunk_encode(payload);
  encoded += chunk_encode(" and more");
  encoded += kLastChunk;

  ChunkedDecoder decoder;
  std::string out;
  EXPECT_EQ(ParseStatus::kComplete, decoder.feed(encoded, &out));
  EXPECT_EQ("hello, chunked world and more", out);
}

TEST(ChunkedDecoder, ByteAtATime) {
  std::string encoded = chunk_encode("abc");
  encoded += std::string(kLastChunk);
  ChunkedDecoder decoder;
  std::string out;
  ParseStatus status = ParseStatus::kNeedMore;
  for (const char c : encoded) {
    status = decoder.feed(std::string_view(&c, 1), &out);
    ASSERT_NE(ParseStatus::kError, status);
  }
  EXPECT_EQ(ParseStatus::kComplete, status);
  EXPECT_EQ("abc", out);
}

TEST(ChunkedDecoder, RejectsBadFraming) {
  ChunkedDecoder decoder;
  std::string out;
  EXPECT_EQ(ParseStatus::kError, decoder.feed("zz\r\ndata\r\n", &out));
}

TEST(SseFrame, FormatsEventIdData) {
  EXPECT_EQ("event: done\nid: 7\ndata: {\"x\":1}\n\n", sse_frame("done", 7, "{\"x\":1}"));
  // Multi-line payloads become one data: line per line, per the SSE spec.
  EXPECT_EQ("event: e\nid: 1\ndata: a\ndata: b\n\n", sse_frame("e", 1, "a\nb"));
}

// ---------------------------------------------------------------- router

HttpRequest make_request(std::string method, std::string target) {
  HttpRequest request;
  request.method = std::move(method);
  request.target = std::move(target);
  request.version = "HTTP/1.1";
  return request;
}

TEST(Router, MatchesAndCaptures) {
  Router router;
  router.add("GET", "/v1/jobs/{id}", [](const HttpRequest&, const RouteParams& params) {
    HttpResponse response;
    response.body = *find_param(params, "id");
    return response;
  });
  const HttpResponse response = router.dispatch(make_request("GET", "/v1/jobs/42"));
  EXPECT_EQ(200, response.status);
  EXPECT_EQ("42", response.body);
}

TEST(Router, DistinguishesNotFoundFromMethodNotAllowed) {
  Router router;
  router.add("GET", "/v1/jobs", [](const HttpRequest&, const RouteParams&) {
    return HttpResponse();
  });
  EXPECT_EQ(404, router.dispatch(make_request("GET", "/nope")).status);
  const HttpResponse response = router.dispatch(make_request("DELETE", "/v1/jobs"));
  EXPECT_EQ(405, response.status);
  ASSERT_NE(nullptr, find_header(response.headers, "Allow"));
  EXPECT_EQ("GET", *find_header(response.headers, "Allow"));
}

TEST(Router, HandlerErrorsBecomeResponses) {
  Router router;
  router.add("GET", "/bad", [](const HttpRequest&, const RouteParams&) -> HttpResponse {
    throw Error("bad input");
  });
  router.add("GET", "/boom", [](const HttpRequest&, const RouteParams&) -> HttpResponse {
    throw std::runtime_error("boom");
  });
  EXPECT_EQ(400, router.dispatch(make_request("GET", "/bad")).status);
  EXPECT_EQ(500, router.dispatch(make_request("GET", "/boom")).status);
}

// ------------------------------------------------------------- admission

obs::HistogramSnapshot histogram_of(const std::vector<double>& seconds) {
  obs::LatencyHistogram histogram;
  for (const double s : seconds) {
    histogram.record(std::chrono::duration_cast<std::chrono::nanoseconds>(
        std::chrono::duration<double>(s)));
  }
  return histogram.snapshot();
}

TEST(Admission, ColdServerAdmitsOptimistically) {
  AdmissionConfig config;
  const AdmissionDecision decision =
      admit(config, svc::JobPriority::kInteractive, 0, 4, obs::HistogramSnapshot());
  EXPECT_TRUE(decision.accepted);
  EXPECT_DOUBLE_EQ(config.default_service_seconds, decision.estimated_service_seconds);
}

TEST(Admission, ColdServerStillRejectsImpossibleDeadline) {
  AdmissionConfig config;
  config.default_service_seconds = 10.0;
  config.deadline_seconds[0] = 1.0;
  const AdmissionDecision decision =
      admit(config, svc::JobPriority::kInteractive, 0, 4, obs::HistogramSnapshot());
  EXPECT_FALSE(decision.accepted);
  EXPECT_GE(decision.retry_after_seconds, 1);
}

TEST(Admission, WarmHistogramDrivesRejection) {
  AdmissionConfig config;
  config.deadline_seconds[0] = 2.0;
  // p95 ~= 1s; queue of 8 on 2 workers -> 4 waves -> ~5s estimate > 2s.
  const auto latency = histogram_of({1.0, 1.0, 1.0, 1.0, 1.0, 1.0});
  const AdmissionDecision rejected =
      admit(config, svc::JobPriority::kInteractive, 8, 2, latency);
  EXPECT_FALSE(rejected.accepted);
  EXPECT_GE(rejected.retry_after_seconds, 1);

  // Same load is fine for the background class (600s deadline).
  EXPECT_TRUE(admit(config, svc::JobPriority::kBackground, 8, 2, latency).accepted);
  // And an empty queue admits the interactive job again.
  EXPECT_TRUE(admit(config, svc::JobPriority::kInteractive, 0, 2, latency).accepted);
}

TEST(Admission, WaitScalesWithDepthOverWorkers) {
  AdmissionConfig config;
  const auto latency = histogram_of({1.0, 1.0, 1.0, 1.0});
  const AdmissionDecision one_lane =
      admit(config, svc::JobPriority::kBackground, 6, 1, latency);
  const AdmissionDecision three_lanes =
      admit(config, svc::JobPriority::kBackground, 6, 3, latency);
  EXPECT_GT(one_lane.estimated_wait_seconds, three_lanes.estimated_wait_seconds);
}

TEST(Admission, NonPositiveDeadlineDisablesShedding) {
  AdmissionConfig config;
  config.deadline_seconds[0] = 0.0;
  const auto latency = histogram_of({100.0, 100.0, 100.0, 100.0});
  EXPECT_TRUE(admit(config, svc::JobPriority::kInteractive, 1000, 1, latency).accepted);
}

// --------------------------------------------------------------- journal

TEST(Journal, ParsesRecordsAndTornFinalLine) {
  const std::string text =
      "{\"event\":\"accepted\",\"id\":1,\"priority\":\"batch\",\"spec\":{\"assay\":\"pcr\"}}\n"
      "{\"event\":\"finished\",\"id\":1,\"status\":\"done\",\"result_doc\":\"{}\"}\n"
      "{\"event\":\"accepted\",\"id\":2,\"priority\":\"inter";  // torn: no newline
  long torn = 0;
  const auto records = JobJournal::parse(text, &torn);
  ASSERT_EQ(2u, records.size());
  EXPECT_EQ(1, torn);
  EXPECT_EQ(JournalRecord::Type::kAccepted, records[0].type);
  EXPECT_EQ("{\"assay\":\"pcr\"}", records[0].spec_json);
  EXPECT_EQ(JournalRecord::Type::kFinished, records[1].type);
  EXPECT_EQ("{}", records[1].result_doc);
}

TEST(Journal, SkipsCorruptMiddleLines) {
  const std::string text =
      "not json at all\n"
      "{\"event\":\"accepted\",\"id\":3,\"priority\":\"batch\",\"spec\":{}}\n";
  long torn = 0;
  const auto records = JobJournal::parse(text, &torn);
  ASSERT_EQ(1u, records.size());
  EXPECT_EQ(1, torn);
  EXPECT_EQ(3u, records[0].id);
}

TEST(Journal, AppendAndReplayRoundTrip) {
  const std::string path = testing::TempDir() + "journal_roundtrip.jsonl";
  std::remove(path.c_str());
  {
    JobJournal journal;
    EXPECT_TRUE(journal.open(path).empty());
    journal.append_accepted(7, "interactive", "{\"assay\":\"pcr\"}");
    // Documents with quotes and newlines must survive the escaping.
    journal.append_finished(7, "done", "{\n  \"x\": \"a\\\"b\"\n}", "");
    journal.close();
  }
  JobJournal journal;
  const auto records = journal.open(path);
  ASSERT_EQ(2u, records.size());
  EXPECT_EQ(7u, records[0].id);
  EXPECT_EQ("{\"assay\":\"pcr\"}", records[0].spec_json);
  EXPECT_EQ("{\n  \"x\": \"a\\\"b\"\n}", records[1].result_doc);
  EXPECT_EQ(0, journal.stats().torn_lines);
  std::remove(path.c_str());
}

TEST(Journal, TraceparentRoundTripsAndOldRecordsParse) {
  const std::string path = testing::TempDir() + "journal_trace.jsonl";
  std::remove(path.c_str());
  const std::string header = "00-0af7651916cd43dd8448eb211c80319c-b7ad6b7169203331-01";
  {
    JobJournal journal;
    EXPECT_TRUE(journal.open(path).empty());
    journal.append_accepted(1, "interactive", "{\"assay\":\"pcr\"}", header);
    journal.append_accepted(2, "batch", "{\"assay\":\"pcr\"}");  // no trace
    journal.close();
  }
  JobJournal journal;
  const auto records = journal.open(path);
  ASSERT_EQ(2u, records.size());
  EXPECT_EQ(header, records[0].traceparent);
  EXPECT_TRUE(records[1].traceparent.empty());
  std::remove(path.c_str());

  // Pre-trace journals (no "trace" key at all) still parse.
  long torn = 0;
  const auto old = JobJournal::parse(
      "{\"event\":\"accepted\",\"id\":9,\"priority\":\"batch\",\"spec\":{}}\n", &torn);
  ASSERT_EQ(1u, old.size());
  EXPECT_EQ(0, torn);
  EXPECT_TRUE(old[0].traceparent.empty());
}

// ------------------------------------------------------------------ wire

TEST(Wire, ParsesFullSpec) {
  const WireSpec wire = parse_wire_spec(
      "{\"kind\":\"synthesis\",\"assay\":\"pcr\",\"policy\":2,\"seed\":99,"
      "\"grid\":12,\"priority\":\"batch\",\"deadline_ms\":5000}");
  EXPECT_EQ(svc::JobKind::kSynthesis, wire.spec.kind);
  EXPECT_EQ("pcr", wire.assay_ref);
  EXPECT_EQ(2, wire.policy_increments);
  EXPECT_EQ(99u, wire.seed);
  EXPECT_EQ(12, *wire.spec.options.grid_size);
  EXPECT_EQ(svc::JobPriority::kBatch, wire.spec.priority);
  ASSERT_TRUE(wire.spec.deadline.has_value());
  EXPECT_EQ(std::chrono::milliseconds(5000), *wire.spec.deadline);
  EXPECT_FALSE(wire.canonical.empty());
}

TEST(Wire, PriorityDefaultsByKind) {
  EXPECT_EQ(svc::JobPriority::kInteractive,
            parse_wire_spec("{\"assay\":\"pcr\"}").spec.priority);
  EXPECT_EQ(svc::JobPriority::kBackground,
            parse_wire_spec("{\"kind\":\"reliability\",\"assay\":\"pcr\"}").spec.priority);
}

TEST(Wire, RejectsUnknownKeys) {
  EXPECT_THROW(parse_wire_spec("{\"assay\":\"pcr\",\"polcy\":2}"), Error);
  EXPECT_THROW(parse_wire_spec("{\"assay\":\"pcr\",\"reliability\":{\"trails\":5}}"),
               Error);
}

TEST(Wire, ParsesFleetSpec) {
  const WireSpec wire = parse_wire_spec(
      "{\"kind\":\"fleet\",\"assay\":\"pcr\",\"seed\":7,"
      "\"fleet\":{\"chips\":3,\"cadence\":4,\"horizon\":12,\"max_repairs\":1}}");
  EXPECT_EQ(svc::JobKind::kFleet, wire.spec.kind);
  EXPECT_EQ(svc::JobPriority::kBatch, wire.spec.priority);  // long batch work
  EXPECT_NE(nullptr, wire.spec.fleet_runner);
  // Typos and nonsense bounds fail loudly, like every other wire field.
  EXPECT_THROW(
      parse_wire_spec("{\"kind\":\"fleet\",\"assay\":\"pcr\",\"fleet\":{\"chps\":3}}"),
      Error);
  EXPECT_THROW(
      parse_wire_spec("{\"kind\":\"fleet\",\"assay\":\"pcr\",\"fleet\":{\"chips\":0}}"),
      Error);
}

TEST(Wire, RequiresExactlyOneSource) {
  EXPECT_THROW(parse_wire_spec("{\"kind\":\"synthesis\"}"), Error);
  EXPECT_THROW(parse_wire_spec("{\"assay\":\"pcr\",\"dsl\":\"assay x {}\"}"), Error);
  EXPECT_THROW(parse_wire_spec("{\"assay\":\"no-such-benchmark\"}"), Error);
}

TEST(Wire, AcceptsInlineDsl) {
  std::string dsl =
      "assay tiny\n"
      "input sample\n"
      "input buffer\n"
      "mix dilute volume 8 duration 6 from sample:1 buffer:3\n"
      "output waste from dilute\n";
  JsonWriter w;
  w.begin_object();
  w.key("dsl").value(dsl);
  w.end_object();
  const WireSpec wire = parse_wire_spec(w.str());
  EXPECT_EQ("(inline)", wire.assay_ref);
  EXPECT_EQ(4, wire.spec.graph.size());
}

// ------------------------------------------------------------ end-to-end

/// Real server on an ephemeral loopback port, serving on its own thread.
class ServerTest : public testing::Test {
 protected:
  void start(JobManager::Config manager_config = {},
             AdmissionConfig admission = AdmissionConfig()) {
    manager_config.service.overflow = svc::OverflowPolicy::kReject;
    if (manager_config.service.workers == 0) manager_config.service.workers = 1;
    manager_ = std::make_unique<JobManager>(std::move(manager_config));
    manager_->recover();
    HttpServer::Config server_config;
    server_config.port = 0;
    server_config.grace_ms = 2000;
    server_ = std::make_unique<HttpServer>(server_config, *manager_,
                                           make_api_router(*manager_, admission));
    server_->bind();
    thread_ = std::thread([this] { server_->serve(); });
  }

  void TearDown() override {
    if (server_ != nullptr) {
      manager_->cancel_all();
      server_->request_stop();
      thread_.join();
      server_.reset();
      manager_.reset();
    }
  }

  ApiClient client() { return ApiClient("127.0.0.1", server_->port()); }

  /// Sends raw bytes, reads until EOF (or `read_reply` false: just closes).
  std::string raw(const std::string& bytes, bool read_reply = true) {
    const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
    EXPECT_GE(fd, 0);
    sockaddr_in addr{};
    addr.sin_family = AF_INET;
    addr.sin_port = htons(static_cast<std::uint16_t>(server_->port()));
    ::inet_pton(AF_INET, "127.0.0.1", &addr.sin_addr);
    EXPECT_EQ(0, ::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)));
    EXPECT_EQ(static_cast<ssize_t>(bytes.size()),
              ::send(fd, bytes.data(), bytes.size(), MSG_NOSIGNAL));
    std::string reply;
    if (read_reply) {
      char buffer[4096];
      ssize_t n;
      while ((n = ::recv(fd, buffer, sizeof(buffer), 0)) > 0) {
        reply.append(buffer, static_cast<std::size_t>(n));
      }
    }
    ::close(fd);
    return reply;
  }

  std::uint64_t submit_ok(const std::string& spec) {
    const ClientResponse response = client().post("/v1/jobs", spec);
    EXPECT_EQ(202, response.status) << response.body;
    return static_cast<std::uint64_t>(JsonValue::parse(response.body).at("id").as_int());
  }

  /// Blocks until the job's SSE stream delivers a terminal event.
  std::string watch_terminal(std::uint64_t id) {
    std::string terminal;
    client().watch(id, [&](const std::string& event, std::uint64_t, const std::string&) {
      if (event == "done" || event == "cancelled" || event == "failed" ||
          event == "rejected") {
        terminal = event;
      }
      return true;
    });
    return terminal;
  }

  std::unique_ptr<JobManager> manager_;
  std::unique_ptr<HttpServer> server_;
  std::thread thread_;
};

TEST_F(ServerTest, HealthAndMetrics) {
  start();
  const ClientResponse health = client().get("/healthz");
  EXPECT_EQ(200, health.status);
  EXPECT_EQ("ok", JsonValue::parse(health.body).at("status").as_string());

  const ClientResponse metrics = client().get("/metrics");
  EXPECT_EQ(200, metrics.status);
  const JsonValue doc = JsonValue::parse(metrics.body);
  EXPECT_TRUE(doc.has("service"));
  EXPECT_GE(doc.at("net").at("uptime_seconds").as_number(), 0.0);
}

TEST_F(ServerTest, SubmitStreamsLifecycleAndResultMatchesCliDocument) {
  start();
  const std::uint64_t id =
      submit_ok("{\"assay\":\"pcr\",\"asap\":true,\"grid\":10,\"seed\":2015}");

  std::vector<std::string> events;
  client().watch(id, [&](const std::string& event, std::uint64_t seq, const std::string&) {
    EXPECT_EQ(events.size() + 1, seq);  // gapless, ordered
    events.push_back(event);
    return true;
  });
  ASSERT_FALSE(events.empty());
  EXPECT_EQ("queued", events.front());
  EXPECT_EQ("done", events.back());
  // running must come after queued and before done.
  const auto running = std::find(events.begin(), events.end(), "running");
  ASSERT_NE(events.end(), running);

  const ClientResponse status = client().get("/v1/jobs/" + std::to_string(id));
  EXPECT_EQ(200, status.status);
  EXPECT_EQ("done", JsonValue::parse(status.body).at("state").as_string());

  const ClientResponse result = client().get("/v1/jobs/" + std::to_string(id) + "/result");
  ASSERT_EQ(200, result.status);

  // Reference document, built exactly the way `flowsynth synth pcr --asap
  // --grid 10 --out` builds it.  Synthesis is deterministic; the measured
  // wall-clock runtime is the one field that cannot match, so it is pinned
  // to the server's value before the byte comparison.
  const assay::SequencingGraph graph = assay::make_benchmark("pcr");
  const sched::Schedule schedule = sched::schedule_asap(graph);
  synth::SynthesisOptions options;
  options.grid_size = 10;
  options.heuristic.seed = 2015;
  report::StoredResult stored;
  stored.assay = "pcr";
  stored.asap = true;
  stored.seed = 2015;
  stored.result = synth::synthesize(graph, schedule, options);
  stored.result.runtime_seconds =
      report::stored_result_from_json(result.body).result.runtime_seconds;
  EXPECT_EQ(report::stored_result_to_json(stored), result.body);

  // Resubmitting the identical spec is a cache hit with the same document.
  const std::uint64_t id2 =
      submit_ok("{\"assay\":\"pcr\",\"asap\":true,\"grid\":10,\"seed\":2015}");
  EXPECT_EQ("done", watch_terminal(id2));
  const ClientResponse result2 =
      client().get("/v1/jobs/" + std::to_string(id2) + "/result");
  ASSERT_EQ(200, result2.status);
  EXPECT_EQ(result.body, result2.body);
}

TEST_F(ServerTest, FleetEndpointRunsClosedLoopJob) {
  start();
  // The dedicated route refuses non-fleet bodies.
  EXPECT_EQ(400, client().post("/v1/fleet", "{\"assay\":\"pcr\"}").status);

  const ClientResponse accepted = client().post(
      "/v1/fleet",
      "{\"kind\":\"fleet\",\"assay\":\"pcr\",\"seed\":2015,"
      "\"fleet\":{\"chips\":3,\"cadence\":5,\"horizon\":20}}");
  ASSERT_EQ(202, accepted.status) << accepted.body;
  const auto id =
      static_cast<std::uint64_t>(JsonValue::parse(accepted.body).at("id").as_int());
  EXPECT_EQ("done", watch_terminal(id));

  const ClientResponse result = client().get("/v1/jobs/" + std::to_string(id) + "/result");
  ASSERT_EQ(200, result.status);
  const JsonValue doc = JsonValue::parse(result.body);
  EXPECT_EQ("flowsynth-fleet-v1", doc.at("format").as_string());
  EXPECT_EQ(3, doc.at("chips").as_int());
  EXPECT_GE(doc.at("faults").at("detected").as_int(), 0);
  EXPECT_TRUE(doc.has("availability"));
  EXPECT_TRUE(doc.has("mean_detection_latency_runs"));

  // The fleet counters surface in both metrics flavors.
  const JsonValue metrics = JsonValue::parse(client().get("/metrics").body);
  EXPECT_EQ(1, metrics.at("service").at("fleet").at("jobs").as_int());
  EXPECT_EQ(3, metrics.at("service").at("fleet").at("chips").as_int());
  const ClientResponse prom = client().get("/metrics?format=prometheus");
  EXPECT_NE(prom.body.find("flowsynth_fleet_jobs_total"), std::string::npos);
  EXPECT_NE(prom.body.find("flowsynth_fleet_availability"), std::string::npos);
}

TEST_F(ServerTest, UnknownJobsAnswer404AndUnfinished409) {
  start();
  EXPECT_EQ(404, client().get("/v1/jobs/999").status);
  EXPECT_EQ(404, client().get("/v1/jobs/999/result").status);
  EXPECT_EQ(404, client().del("/v1/jobs/999").status);
  EXPECT_EQ(404, client().get("/v1/jobs/abc").status);
  EXPECT_EQ(404, client().get("/v1/jobs/999/events").status);

  // A long job's result is 409 while it runs.
  const std::uint64_t id = submit_ok(
      "{\"kind\":\"reliability\",\"assay\":\"protein\","
      "\"reliability\":{\"trials\":100000000}}");
  const ClientResponse early = client().get("/v1/jobs/" + std::to_string(id) + "/result");
  EXPECT_EQ(409, early.status);
  EXPECT_EQ(200, client().del("/v1/jobs/" + std::to_string(id)).status);
  EXPECT_EQ("cancelled", watch_terminal(id));
}

TEST_F(ServerTest, CancelRunningJobCooperatively) {
  start();
  const std::uint64_t id = submit_ok(
      "{\"kind\":\"reliability\",\"assay\":\"protein\","
      "\"reliability\":{\"trials\":100000000}}");
  // Give the worker a moment to actually start it, then cancel.
  std::this_thread::sleep_for(std::chrono::milliseconds(100));
  const ClientResponse cancel = client().del("/v1/jobs/" + std::to_string(id));
  EXPECT_EQ(200, cancel.status);
  EXPECT_TRUE(JsonValue::parse(cancel.body).at("cancelled").as_bool());
  EXPECT_EQ("cancelled", watch_terminal(id));

  // Cancelling a terminal job reports cancelled=false.
  const ClientResponse again = client().del("/v1/jobs/" + std::to_string(id));
  EXPECT_EQ(200, again.status);
  EXPECT_FALSE(JsonValue::parse(again.body).at("cancelled").as_bool());

  const JsonValue metrics = JsonValue::parse(client().get("/metrics").body);
  EXPECT_GE(metrics.at("net").at("jobs_cancelled").as_int(), 1);
  EXPECT_GE(metrics.at("net").at("cancel_requests").as_int(), 2);
}

TEST_F(ServerTest, FullQueueAnswers503) {
  JobManager::Config config;
  config.service.workers = 1;
  config.service.queue_capacity = 1;
  start(std::move(config));
  // Blocker occupies the only worker; the next job fills the queue; the
  // third finds it full and is rejected.
  const std::uint64_t blocker = submit_ok(
      "{\"kind\":\"reliability\",\"assay\":\"protein\","
      "\"reliability\":{\"trials\":100000000}}");
  std::this_thread::sleep_for(std::chrono::milliseconds(100));
  const std::uint64_t queued = submit_ok("{\"assay\":\"pcr\",\"asap\":true,\"grid\":10}");

  const ClientResponse rejected =
      client().post("/v1/jobs", "{\"assay\":\"pcr\",\"grid\":10}");
  EXPECT_EQ(503, rejected.status) << rejected.body;
  ASSERT_NE(nullptr, find_header(rejected.headers, "Retry-After"));

  EXPECT_EQ(200, client().del("/v1/jobs/" + std::to_string(queued)).status);
  EXPECT_EQ(200, client().del("/v1/jobs/" + std::to_string(blocker)).status);
  EXPECT_EQ("cancelled", watch_terminal(blocker));

  const JsonValue metrics = JsonValue::parse(client().get("/metrics").body);
  EXPECT_GE(metrics.at("net").at("queue_rejected").as_int(), 1);
}

TEST_F(ServerTest, AdmissionControlSheds429WithRetryAfter) {
  AdmissionConfig admission;
  admission.default_service_seconds = 10.0;  // cold estimate >> deadline
  admission.deadline_seconds[0] = 1.0;
  start({}, admission);

  const ClientResponse response =
      client().post("/v1/jobs", "{\"assay\":\"pcr\",\"grid\":10}");
  EXPECT_EQ(429, response.status) << response.body;
  ASSERT_NE(nullptr, find_header(response.headers, "Retry-After"));
  EXPECT_GE(JsonValue::parse(response.body).at("retry_after_seconds").as_int(), 1);

  // The background class has a long deadline and still gets through.
  const ClientResponse ok = client().post(
      "/v1/jobs", "{\"assay\":\"pcr\",\"asap\":true,\"grid\":10,\"priority\":\"background\"}");
  EXPECT_EQ(202, ok.status) << ok.body;
  EXPECT_EQ("done",
            watch_terminal(static_cast<std::uint64_t>(
                JsonValue::parse(ok.body).at("id").as_int())));

  const JsonValue metrics = JsonValue::parse(client().get("/metrics").body);
  EXPECT_GE(metrics.at("net").at("admission_rejected").as_int(), 1);
}

TEST_F(ServerTest, MalformedRequestsNeverCrashTheServer) {
  start();
  // Garbage request line -> 400.
  EXPECT_NE(std::string::npos, raw("\x01garbage\r\n\r\n").find("400"));
  // Unsupported version -> 505.
  EXPECT_NE(std::string::npos, raw("GET / HTTP/3.0\r\n\r\n").find("505"));
  // Declared body larger than the limit -> 413 without buffering it.
  EXPECT_NE(std::string::npos,
            raw("POST /v1/jobs HTTP/1.1\r\nContent-Length: 99999999\r\n\r\n").find("413"));
  // Truncated headers, peer hangs up mid-request: no reply expected.
  raw("GET /healthz HTT", /*read_reply=*/false);
  // Bad JSON body -> 400 from the handler.
  EXPECT_EQ(400, client().post("/v1/jobs", "{not json").status);
  // Unknown spec key -> 400.
  EXPECT_EQ(400, client().post("/v1/jobs", "{\"asay\":\"pcr\"}").status);
  // Unknown benchmark -> 400.
  EXPECT_EQ(400, client().post("/v1/jobs", "{\"assay\":\"nope\"}").status);

  // After all of that the server still works.
  EXPECT_EQ(200, client().get("/healthz").status);
  const JsonValue metrics = JsonValue::parse(client().get("/metrics").body);
  EXPECT_GE(metrics.at("net").at("bad_requests").as_int(), 3);
}

/// Value of the first sample line starting with `series` (name + labels),
/// or NaN when the series is absent.
double prometheus_value(const std::string& text, const std::string& series) {
  std::size_t pos = 0;
  while (pos < text.size()) {
    std::size_t end = text.find('\n', pos);
    if (end == std::string::npos) end = text.size();
    const std::string line = text.substr(pos, end - pos);
    if (line.compare(0, series.size(), series) == 0) {
      const std::size_t space = line.rfind(' ');
      if (space != std::string::npos) return std::atof(line.c_str() + space + 1);
    }
    pos = end + 1;
  }
  return std::nan("");
}

TEST_F(ServerTest, MetricsNegotiatesPrometheusAndJson) {
  start();
  // Drive some load first so counters and the 1m rate window are nonzero.
  const std::uint64_t id = submit_ok("{\"assay\":\"pcr\",\"asap\":true,\"grid\":10}");
  EXPECT_EQ("done", watch_terminal(id));

  // Default (no Accept preference): the JSON document, unchanged.
  const ClientResponse json = client().get("/metrics");
  EXPECT_EQ(200, json.status);
  EXPECT_TRUE(JsonValue::parse(json.body).has("service"));

  // ?format=prometheus: text exposition that passes the format lint.
  const ClientResponse prom = client().get("/metrics?format=prometheus");
  EXPECT_EQ(200, prom.status);
  const std::string* content_type = find_header(prom.headers, "Content-Type");
  ASSERT_NE(nullptr, content_type);
  EXPECT_EQ(std::string(obs::kPrometheusContentType), *content_type);
  std::string error;
  EXPECT_TRUE(obs::lint_prometheus(prom.body, &error)) << error;
  EXPECT_GE(prometheus_value(prom.body, "flowsynth_jobs_total{state=\"submitted\"}"),
            1.0);
  EXPECT_GE(prometheus_value(prom.body, "flowsynth_http_requests_total"), 1.0);
  // The interval ring was seeded at construction, so a scrape right after
  // load reports a nonzero 1-minute submission rate.
  EXPECT_GT(prometheus_value(
                prom.body,
                "flowsynth_job_rate_per_second{kind=\"submitted\",window=\"1m\"}"),
            0.0);

  // Accept-header negotiation: text/plain preferred -> Prometheus.
  ApiClient scraper = client();
  scraper.set_header("Accept", "text/plain;version=0.0.4, application/json;q=0.5");
  const ClientResponse negotiated = scraper.get("/metrics");
  EXPECT_EQ(200, negotiated.status);
  EXPECT_TRUE(obs::lint_prometheus(negotiated.body, &error)) << error;
  // ?format=json wins over any Accept header.
  const ClientResponse forced = scraper.get("/metrics?format=json");
  EXPECT_TRUE(JsonValue::parse(forced.body).has("service"));
}

TEST_F(ServerTest, TraceparentPropagatesSubmitToSseToStatus) {
  const std::string journal_path = testing::TempDir() + "trace_e2e_journal.jsonl";
  std::remove(journal_path.c_str());
  JobManager::Config config;
  config.journal_path = journal_path;
  start(std::move(config));

  const std::string trace_id = "0af7651916cd43dd8448eb211c80319c";
  const std::string header = "00-" + trace_id + "-b7ad6b7169203331-01";
  ApiClient traced = client();
  traced.set_header("traceparent", header);

  // Submit: the 202 body and the response header carry the caller's id.
  const ClientResponse accepted =
      traced.post("/v1/jobs", "{\"assay\":\"pcr\",\"asap\":true,\"grid\":10}");
  ASSERT_EQ(202, accepted.status) << accepted.body;
  const JsonValue body = JsonValue::parse(accepted.body);
  EXPECT_EQ(trace_id, body.at("trace_id").as_string());
  const std::string* echoed = find_header(accepted.headers, "traceparent");
  ASSERT_NE(nullptr, echoed);
  obs::TraceContext echoed_context;
  ASSERT_TRUE(obs::parse_traceparent(*echoed, &echoed_context));
  EXPECT_EQ(trace_id, echoed_context.trace_id_hex());

  // SSE: the stream response echoes the id and every event payload carries
  // it — byte-for-byte the id the submit sent.
  const auto id = static_cast<std::uint64_t>(body.at("id").as_int());
  std::vector<Header> stream_headers;
  int frames = 0;
  traced.watch(id, [&](const std::string&, std::uint64_t, const std::string& data) {
    EXPECT_EQ(trace_id, JsonValue::parse(data).at("trace_id").as_string()) << data;
    ++frames;
    return true;
  }, /*after_seq=*/0, &stream_headers);
  EXPECT_GE(frames, 2);  // at least queued + done
  const std::string* stream_echo = find_header(stream_headers, "traceparent");
  ASSERT_NE(nullptr, stream_echo);
  ASSERT_TRUE(obs::parse_traceparent(*stream_echo, &echoed_context));
  EXPECT_EQ(trace_id, echoed_context.trace_id_hex());

  // Status document.
  const ClientResponse status = client().get("/v1/jobs/" + std::to_string(id));
  EXPECT_EQ(trace_id, JsonValue::parse(status.body).at("trace_id").as_string());

  // Kill the first life (TearDown = ungraceful enough: the journal has the
  // accepted record) and replay: the recovered job keeps the same id.
  TearDown();
  JobManager::Config second;
  second.service.workers = 1;
  second.journal_path = journal_path;
  JobManager replayed(second);
  replayed.recover();
  ASSERT_TRUE(replayed.exists(id));
  const JsonValue replayed_status = JsonValue::parse(replayed.status_json(id));
  EXPECT_EQ(trace_id, replayed_status.at("trace_id").as_string());
  std::remove(journal_path.c_str());
}

TEST_F(ServerTest, RequestsWithoutTraceparentGetFreshDistinctIds) {
  start();
  const ClientResponse first = client().get("/healthz");
  const ClientResponse second = client().get("/healthz");
  const std::string* header_1 = find_header(first.headers, "traceparent");
  const std::string* header_2 = find_header(second.headers, "traceparent");
  ASSERT_NE(nullptr, header_1);
  ASSERT_NE(nullptr, header_2);
  obs::TraceContext context_1, context_2;
  ASSERT_TRUE(obs::parse_traceparent(*header_1, &context_1));
  ASSERT_TRUE(obs::parse_traceparent(*header_2, &context_2));
  EXPECT_FALSE(context_1 == context_2);
}

TEST_F(ServerTest, FuzzedTraceparentHeadersNeverCrashAndFailClosed) {
  start();
  const std::string valid = "00-0af7651916cd43dd8448eb211c80319c-b7ad6b7169203331-01";
  std::mt19937 rng(42);
  std::uniform_int_distribution<int> pos(0, static_cast<int>(valid.size()) - 1);
  // Printable mutations only: raw control bytes in a header value are the
  // *parser's* 400 to give, which is not what this test is about.
  std::uniform_int_distribution<int> printable(0x20, 0x7e);
  for (int i = 0; i < 200; ++i) {
    std::string mutated = valid;
    for (int m = 0; m <= i % 3; ++m) {
      mutated[static_cast<std::size_t>(pos(rng))] = static_cast<char>(printable(rng));
    }
    ApiClient fuzzer = client();
    fuzzer.set_header("traceparent", mutated);
    const ClientResponse response = fuzzer.get("/healthz");
    ASSERT_EQ(200, response.status) << "died on: " << mutated;
    // Whatever went in, a canonical context comes out: either the caller's
    // (still-valid) ids or a freshly minted pair — never garbage.
    const std::string* echoed = find_header(response.headers, "traceparent");
    ASSERT_NE(nullptr, echoed);
    obs::TraceContext context;
    EXPECT_TRUE(obs::parse_traceparent(*echoed, &context)) << *echoed;
    obs::TraceContext sent;
    if (obs::parse_traceparent(mutated, &sent)) {
      EXPECT_EQ(sent.trace_id_hex(), context.trace_id_hex());
    }
  }
  // The server is still healthy after the fuzz.
  EXPECT_EQ(200, client().get("/healthz").status);
}

TEST(JobManagerRecovery, RequeuedJobsKeepTheirTraceIds) {
  const std::string path = testing::TempDir() + "trace_requeue_journal.jsonl";
  std::remove(path.c_str());
  // A first life that crashed right after accepting job 1 (trace attached)
  // and job 2 (pre-trace record, no "trace" key).
  {
    std::ofstream file(path);
    file << "{\"event\":\"accepted\",\"id\":1,\"priority\":\"batch\","
            "\"trace\":\"00-0af7651916cd43dd8448eb211c80319c-b7ad6b7169203331-01\","
            "\"spec\":{\"assay\":\"pcr\",\"asap\":true,\"grid\":10}}\n";
    file << "{\"event\":\"accepted\",\"id\":2,\"priority\":\"batch\","
            "\"spec\":{\"assay\":\"pcr\",\"asap\":true,\"grid\":10,\"seed\":7}}\n";
  }
  JobManager::Config config;
  config.service.workers = 1;
  config.journal_path = path;
  JobManager manager(config);
  manager.recover();
  for (const std::uint64_t id : {std::uint64_t{1}, std::uint64_t{2}}) {
    ASSERT_TRUE(manager.exists(id));
    while (!manager.is_terminal(id)) {
      std::this_thread::sleep_for(std::chrono::milliseconds(5));
    }
  }
  const JsonValue traced = JsonValue::parse(manager.status_json(1));
  EXPECT_EQ("0af7651916cd43dd8448eb211c80319c", traced.at("trace_id").as_string());
  EXPECT_FALSE(JsonValue::parse(manager.status_json(2)).has("trace_id"));
  std::remove(path.c_str());
}

TEST(JobManagerRecovery, ReplaysFinishedAndRequeuesUnfinished) {
  const std::string path = testing::TempDir() + "recovery_journal.jsonl";
  std::remove(path.c_str());

  // First life: run one job to completion, journal a second accepted-only
  // record by hand (as if the crash hit mid-run), plus a torn final line.
  std::string done_doc;
  {
    JobManager::Config config;
    config.service.workers = 1;
    config.journal_path = path;
    JobManager manager(config);
    manager.recover();
    const std::uint64_t id =
        manager.submit(parse_wire_spec("{\"assay\":\"pcr\",\"asap\":true,\"grid\":10}"));
    while (!manager.is_terminal(id)) {
      std::this_thread::sleep_for(std::chrono::milliseconds(5));
    }
    std::string state;
    ASSERT_TRUE(manager.result_doc(id, &done_doc, &state));
    ASSERT_EQ("done", state);
  }
  {
    std::ofstream file(path, std::ios::app);
    file << "{\"event\":\"accepted\",\"id\":2,\"priority\":\"batch\","
            "\"spec\":{\"assay\":\"pcr\",\"grid\":10,\"seed\":7}}\n";
    file << "{\"event\":\"accepted\",\"id\":3,\"priori";  // torn
  }

  // Second life: job 1 restored done (byte-identical), job 2 re-enqueued
  // and run, torn line dropped, and new ids continue past the replayed max.
  JobManager::Config config;
  config.service.workers = 1;
  config.journal_path = path;
  JobManager manager(config);
  manager.recover();

  std::string doc;
  std::string state;
  ASSERT_TRUE(manager.result_doc(1, &doc, &state));
  EXPECT_EQ("done", state);
  EXPECT_EQ(done_doc, doc);

  ASSERT_TRUE(manager.exists(2));
  while (!manager.is_terminal(2)) {
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
  }
  EXPECT_EQ("done", manager.state_of(2));

  EXPECT_EQ(1, manager.counters().replayed_done.load());
  EXPECT_EQ(1, manager.counters().replayed_requeued.load());
  EXPECT_EQ(1, manager.journal().stats().torn_lines);
  EXPECT_FALSE(manager.exists(3));  // torn accept was never acknowledged

  const std::uint64_t next = manager.submit(
      parse_wire_spec("{\"assay\":\"pcr\",\"asap\":true,\"grid\":10}"));
  EXPECT_GE(next, 3u);  // no id reuse after replay
  while (!manager.is_terminal(next)) {
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
  }
  std::remove(path.c_str());
}

TEST(JsonDump, PreservesWireCanonicalForm) {
  const std::string text = "{\"a\":1,\"b\":[true,null,\"x\\ny\"],\"c\":{\"d\":2.5}}";
  EXPECT_EQ(text, JsonValue::parse(text).dump());
}

}  // namespace
}  // namespace fsyn::net
