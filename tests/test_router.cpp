// Tests for the router: path legality, storage pass-through with the
// free-space rule, rip-up & re-route, congestion avoidance, and the
// independent routing validator.
#include <gtest/gtest.h>

#include "assay/benchmarks.hpp"
#include "route/router.hpp"
#include "sched/list_scheduler.hpp"
#include "synth/heuristic_mapper.hpp"

namespace fsyn::route {
namespace {

using arch::DeviceInstance;
using arch::DeviceType;
using assay::OpId;
using assay::OpKind;
using assay::Operation;
using assay::SequencingGraph;
using synth::MappingProblem;
using synth::Placement;

Operation input_op(const std::string& name) {
  Operation op;
  op.kind = OpKind::kInput;
  op.name = name;
  return op;
}

Operation mix_op(const std::string& name, std::vector<OpId> parents, int volume,
                 int duration) {
  Operation op;
  op.kind = OpKind::kMix;
  op.name = name;
  op.parents = std::move(parents);
  op.volume = volume;
  op.duration = duration;
  return op;
}

struct Chain {
  SequencingGraph graph{"chain"};
  OpId a, b;

  Chain() {
    const OpId i1 = graph.add_operation(input_op("i1"));
    const OpId i2 = graph.add_operation(input_op("i2"));
    a = graph.add_operation(mix_op("a", {i1, i2}, 8, 6));
    b = graph.add_operation(mix_op("b", {a}, 8, 6));
    graph.validate();
  }
};

TEST(Router, RoutesFillsTransfersAndDrains) {
  Chain fx;
  const auto schedule = sched::schedule_asap(fx.graph);
  auto problem = MappingProblem::build(fx.graph, schedule, arch::Architecture(10, 10));
  const auto mapping = synth::map_heuristic(problem);
  ASSERT_TRUE(mapping.has_value());

  const RoutingResult routing = route_all(problem, mapping->placement);
  ASSERT_TRUE(routing.success);
  validate_routing(problem, mapping->placement, routing);

  int fills = 0, transfers = 0, drains = 0;
  for (const RoutedPath& path : routing.paths) {
    switch (path.kind) {
      case TransportKind::kFill: ++fills; break;
      case TransportKind::kTransfer: ++transfers; break;
      case TransportKind::kDrain: ++drains; break;
    }
  }
  EXPECT_EQ(fills, 2);      // i1, i2 -> a
  EXPECT_EQ(transfers, 1);  // a -> b
  EXPECT_EQ(drains, 1);     // b -> out
}

TEST(Router, PathsAreSortedChronologically) {
  Chain fx;
  const auto schedule = sched::schedule_asap(fx.graph);
  auto problem = MappingProblem::build(fx.graph, schedule, arch::Architecture(10, 10));
  const auto mapping = synth::map_heuristic(problem);
  ASSERT_TRUE(mapping.has_value());
  const RoutingResult routing = route_all(problem, mapping->placement);
  ASSERT_TRUE(routing.success);
  for (std::size_t i = 1; i < routing.paths.size(); ++i) {
    EXPECT_LE(routing.paths[i - 1].time, routing.paths[i].time);
  }
}

TEST(Router, TransferTimeIsProductArrival) {
  Chain fx;
  const auto schedule = sched::schedule_asap(fx.graph);
  auto problem = MappingProblem::build(fx.graph, schedule, arch::Architecture(10, 10));
  const auto mapping = synth::map_heuristic(problem);
  ASSERT_TRUE(mapping.has_value());
  const RoutingResult routing = route_all(problem, mapping->placement);
  ASSERT_TRUE(routing.success);
  for (const RoutedPath& path : routing.paths) {
    if (path.kind != TransportKind::kTransfer) continue;
    EXPECT_EQ(path.time, schedule.arrival_from(fx.a));
  }
}

TEST(Router, OverlappingStorageGivesTrivialTransfer) {
  // Place b's storage overlapping a's device: the product transfer should
  // degenerate to a single shared cell (Fig. 7: sc becomes dc in place).
  Chain fx;
  const auto schedule = sched::schedule_asap(fx.graph);
  auto problem = MappingProblem::build(fx.graph, schedule, arch::Architecture(10, 10));
  Placement placement(2, DeviceInstance{DeviceType{2, 4}, Point{0, 0}});
  placement[static_cast<std::size_t>(problem.task_of(fx.a))] = {DeviceType{2, 4}, Point{2, 2}};
  placement[static_cast<std::size_t>(problem.task_of(fx.b))] = {DeviceType{2, 4}, Point{2, 2}};
  problem.validate_placement(placement);
  const RoutingResult routing = route_all(problem, placement);
  ASSERT_TRUE(routing.success);
  for (const RoutedPath& path : routing.paths) {
    if (path.kind == TransportKind::kTransfer) EXPECT_EQ(path.length(), 1);
  }
}

TEST(Router, AllBenchmarksRouteAfterMapping) {
  for (const auto& name : assay::benchmark_names()) {
    const auto g = assay::make_benchmark(name);
    const auto schedule = sched::schedule_with_policy(g, sched::make_policy(g, 1));
    const int side = arch::Architecture::sized_for(g, schedule, 1.0).width();
    auto problem = MappingProblem::build(g, schedule, arch::Architecture(side, side));
    synth::HeuristicOptions options;
    options.sa_iterations = 4000;
    const auto mapping = synth::map_heuristic(problem, options);
    ASSERT_TRUE(mapping.has_value()) << name;
    const RoutingResult routing = route_all(problem, mapping->placement);
    ASSERT_TRUE(routing.success) << name << ": " << routing.failure;
    validate_routing(problem, mapping->placement, routing);
    EXPECT_GT(routing.total_cells, 0) << name;
  }
}

TEST(Router, ValidatorRejectsCorruptedPaths) {
  Chain fx;
  const auto schedule = sched::schedule_asap(fx.graph);
  auto problem = MappingProblem::build(fx.graph, schedule, arch::Architecture(10, 10));
  const auto mapping = synth::map_heuristic(problem);
  ASSERT_TRUE(mapping.has_value());
  RoutingResult routing = route_all(problem, mapping->placement);
  ASSERT_TRUE(routing.success);

  {
    RoutingResult broken = routing;
    // Disconnect the first multi-cell path.
    for (RoutedPath& path : broken.paths) {
      if (path.cells.size() >= 3) {
        path.cells.erase(path.cells.begin() + 1);
        break;
      }
    }
    EXPECT_THROW(validate_routing(problem, mapping->placement, broken), LogicError);
  }
  {
    RoutingResult broken = routing;
    broken.paths.front().cells = {Point{-1, 0}};
    EXPECT_THROW(validate_routing(problem, mapping->placement, broken), LogicError);
  }
  {
    RoutingResult failed;
    failed.success = false;
    EXPECT_THROW(validate_routing(problem, mapping->placement, failed), LogicError);
  }
}

TEST(Router, CongestionPenaltyDiscouragesSharedCellsAtSameTime) {
  // Two concurrent fills from the same ports: with a strong penalty the
  // two paths should overlap less than with none.
  SequencingGraph g("parallel");
  std::vector<OpId> in;
  for (int i = 0; i < 4; ++i) in.push_back(g.add_operation(input_op("i" + std::to_string(i))));
  g.add_operation(mix_op("a", {in[0], in[1]}, 8, 6));
  g.add_operation(mix_op("b", {in[2], in[3]}, 8, 6));
  g.validate();
  const auto schedule = sched::schedule_asap(g);
  auto problem = MappingProblem::build(g, schedule, arch::Architecture(12, 12));
  const auto mapping = synth::map_heuristic(problem);
  ASSERT_TRUE(mapping.has_value());

  auto shared_cells = [&](const RoutingResult& routing) {
    int shared = 0;
    for (std::size_t i = 0; i < routing.paths.size(); ++i) {
      for (std::size_t j = i + 1; j < routing.paths.size(); ++j) {
        const auto& pa = routing.paths[i];
        const auto& pb = routing.paths[j];
        if (pa.time != pb.time) continue;
        for (const Point& cell : pa.cells) {
          shared += std::count(pb.cells.begin(), pb.cells.end(), cell);
        }
      }
    }
    return shared;
  };

  RouterOptions none;
  none.congestion_penalty = 0.0;
  RouterOptions strong;
  strong.congestion_penalty = 50.0;
  const RoutingResult loose = route_all(problem, mapping->placement, none);
  const RoutingResult tight = route_all(problem, mapping->placement, strong);
  ASSERT_TRUE(loose.success);
  ASSERT_TRUE(tight.success);
  EXPECT_LE(shared_cells(tight), shared_cells(loose));
}

}  // namespace
}  // namespace fsyn::route
