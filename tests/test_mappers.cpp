// Tests for both dynamic-device mappers.
//
// The heuristic mapper must produce valid placements on every benchmark and
// every policy; the exact ILP mapper must match known optima on small
// crafted instances and never lose to the heuristic (it is seeded with the
// heuristic's placement).
#include <gtest/gtest.h>

#include "assay/benchmarks.hpp"
#include "sched/list_scheduler.hpp"
#include "synth/heuristic_mapper.hpp"
#include "synth/ilp_mapper.hpp"

namespace fsyn::synth {
namespace {

using arch::DeviceInstance;
using assay::OpId;
using assay::OpKind;
using assay::Operation;
using assay::SequencingGraph;

Operation input_op(const std::string& name) {
  Operation op;
  op.kind = OpKind::kInput;
  op.name = name;
  return op;
}

Operation mix_op(const std::string& name, std::vector<OpId> parents, int volume,
                 int duration) {
  Operation op;
  op.kind = OpKind::kMix;
  op.name = name;
  op.parents = std::move(parents);
  op.volume = volume;
  op.duration = duration;
  return op;
}

SequencingGraph two_concurrent_mixes() {
  SequencingGraph g("two");
  std::vector<OpId> in;
  for (int i = 0; i < 4; ++i) in.push_back(g.add_operation(input_op("i" + std::to_string(i))));
  g.add_operation(mix_op("a", {in[0], in[1]}, 8, 6));
  g.add_operation(mix_op("b", {in[2], in[3]}, 8, 6));
  g.validate();
  return g;
}

TEST(HeuristicMapper, TwoConcurrentMixesGetDisjointRings) {
  const auto g = two_concurrent_mixes();
  const auto schedule = sched::schedule_asap(g);
  auto problem = MappingProblem::build(g, schedule, arch::Architecture(9, 9));
  const auto outcome = map_heuristic(problem);
  ASSERT_TRUE(outcome.has_value());
  problem.validate_placement(outcome->placement);
  // Enough room: each valve pumps for exactly one operation.
  EXPECT_EQ(outcome->max_pump_load, kPumpActuationsPerMix);
  EXPECT_EQ(outcome->max_pump_load_setting2, 15);  // ceil(120/8)
}

TEST(HeuristicMapper, DeterministicForFixedSeed) {
  const auto g = assay::make_pcr();
  const auto schedule = sched::schedule_asap(g);
  auto problem = MappingProblem::build(g, schedule, arch::Architecture(10, 10));
  HeuristicOptions options;
  options.seed = 7;
  const auto first = map_heuristic(problem, options);
  const auto second = map_heuristic(problem, options);
  ASSERT_TRUE(first.has_value());
  ASSERT_TRUE(second.has_value());
  EXPECT_EQ(first->placement, second->placement);
  EXPECT_EQ(first->max_pump_load, second->max_pump_load);
}

TEST(HeuristicMapper, AnnealingNeverWorseThanGreedy) {
  const auto g = assay::make_mixing_tree();
  const auto schedule = sched::schedule_with_policy(g, sched::make_policy(g, 0));
  auto problem = MappingProblem::build(g, schedule, arch::Architecture(12, 12));
  HeuristicOptions greedy_only;
  greedy_only.sa_iterations = 0;
  const auto greedy = map_heuristic(problem, greedy_only);
  const auto annealed = map_heuristic(problem);
  ASSERT_TRUE(greedy.has_value());
  ASSERT_TRUE(annealed.has_value());
  EXPECT_LE(annealed->max_pump_load, greedy->max_pump_load);
}

TEST(HeuristicMapper, ReturnsNulloptOnImpossiblyTightChip) {
  // 8x8 minus port cells cannot hold 8 concurrent volume-10 devices.
  SequencingGraph g("tight");
  std::vector<OpId> in;
  for (int i = 0; i < 16; ++i) in.push_back(g.add_operation(input_op("i" + std::to_string(i))));
  for (int m = 0; m < 8; ++m) {
    g.add_operation(mix_op("m" + std::to_string(m), {in[2 * m], in[2 * m + 1]}, 10, 6));
  }
  g.validate();
  const auto schedule = sched::schedule_asap(g);
  auto problem = MappingProblem::build(g, schedule, arch::Architecture(8, 8));
  HeuristicOptions options;
  options.greedy_retries = 2;
  EXPECT_FALSE(map_heuristic(problem, options).has_value());
}

TEST(HeuristicMapper, WorksOnEveryBenchmarkAndPolicy) {
  for (const auto& name : assay::benchmark_names()) {
    const auto g = assay::make_benchmark(name);
    for (int increments : {0, 2}) {
      const auto schedule = sched::schedule_with_policy(g, sched::make_policy(g, increments));
      // Generous chip so construction always succeeds.
      const int side = arch::Architecture::sized_for(g, schedule, 1.2).width();
      auto problem = MappingProblem::build(g, schedule, arch::Architecture(side, side));
      HeuristicOptions options;
      options.sa_iterations = 4000;  // keep the test fast
      const auto outcome = map_heuristic(problem, options);
      ASSERT_TRUE(outcome.has_value()) << name << " inc=" << increments;
      problem.validate_placement(outcome->placement);
      EXPECT_GE(outcome->max_pump_load, kPumpActuationsPerMix);
    }
  }
}

TEST(HeuristicMapper, RespectsAblationFlags) {
  const auto g = assay::make_pcr();
  const auto schedule = sched::schedule_with_policy(g, sched::make_policy(g, 0));
  auto problem = MappingProblem::build(g, schedule, arch::Architecture(12, 12));
  problem.set_allow_storage_overlap(false);
  problem.set_routing_convenient(true);
  const auto outcome = map_heuristic(problem);
  ASSERT_TRUE(outcome.has_value());
  // With storage overlap disabled, no two parent/child footprints overlap.
  for (int a = 0; a < problem.task_count(); ++a) {
    for (int b = a + 1; b < problem.task_count(); ++b) {
      if (!problem.time_overlap(a, b)) continue;
      EXPECT_FALSE(outcome->placement[static_cast<std::size_t>(a)].footprint().overlaps(
          outcome->placement[static_cast<std::size_t>(b)].footprint()));
    }
  }
}

// ------------------------------------------------------------- ILP mapper

TEST(IlpMapper, SingleMixOptimumIs40) {
  SequencingGraph g("one");
  const OpId i1 = g.add_operation(input_op("i1"));
  const OpId i2 = g.add_operation(input_op("i2"));
  g.add_operation(mix_op("a", {i1, i2}, 8, 6));
  g.validate();
  const auto schedule = sched::schedule_asap(g);
  auto problem = MappingProblem::build(g, schedule, arch::Architecture(6, 6));
  const auto outcome = map_ilp(problem);
  ASSERT_TRUE(outcome.has_value());
  EXPECT_EQ(outcome->status, ilp::MilpStatus::kOptimal);
  EXPECT_EQ(outcome->max_pump_load, kPumpActuationsPerMix);
  problem.validate_placement(outcome->placement);
}

TEST(IlpMapper, TwoConcurrentMixesOptimal) {
  const auto g = two_concurrent_mixes();
  const auto schedule = sched::schedule_asap(g);
  auto problem = MappingProblem::build(g, schedule, arch::Architecture(7, 7));
  IlpMapperOptions options;
  options.time_limit_seconds = 60.0;
  const auto outcome = map_ilp(problem, options);
  ASSERT_TRUE(outcome.has_value());
  EXPECT_EQ(outcome->status, ilp::MilpStatus::kOptimal);
  EXPECT_EQ(outcome->max_pump_load, kPumpActuationsPerMix);
  problem.validate_placement(outcome->placement);
}

TEST(IlpMapper, WarmStartBoundsTheSearch) {
  const auto g = two_concurrent_mixes();
  const auto schedule = sched::schedule_asap(g);
  auto problem = MappingProblem::build(g, schedule, arch::Architecture(7, 7));
  const auto warm = map_heuristic(problem);
  ASSERT_TRUE(warm.has_value());
  IlpMapperOptions options;
  options.warm_start = warm->placement;
  options.time_limit_seconds = 60.0;
  const auto outcome = map_ilp(problem, options);
  ASSERT_TRUE(outcome.has_value());
  EXPECT_LE(outcome->max_pump_load, warm->max_pump_load);
  problem.validate_placement(outcome->placement);
}

TEST(IlpMapper, MatchesHeuristicOnSmallChainWithinLimits) {
  // a -> b chain on a small chip: both mappers should reach 40 (the two
  // rings never pump simultaneously but the ILP still must coordinate the
  // storage overlap and routing convenience).
  SequencingGraph g("chain");
  const OpId i1 = g.add_operation(input_op("i1"));
  const OpId i2 = g.add_operation(input_op("i2"));
  const OpId a = g.add_operation(mix_op("a", {i1, i2}, 8, 6));
  g.add_operation(mix_op("b", {a}, 8, 6));
  g.validate();
  const auto schedule = sched::schedule_asap(g);
  auto problem = MappingProblem::build(g, schedule, arch::Architecture(7, 7));
  const auto heuristic = map_heuristic(problem);
  ASSERT_TRUE(heuristic.has_value());
  IlpMapperOptions options;
  options.warm_start = heuristic->placement;
  options.time_limit_seconds = 60.0;
  const auto exact = map_ilp(problem, options);
  ASSERT_TRUE(exact.has_value());
  EXPECT_EQ(exact->max_pump_load, kPumpActuationsPerMix);
  EXPECT_EQ(heuristic->max_pump_load, kPumpActuationsPerMix);
}

TEST(IlpMapper, InfeasibleWhenChipCannotHoldConcurrentDevices) {
  // Two concurrent volume-10 devices need more than a 5x5 matrix once the
  // wall gap and port cells are excluded.
  SequencingGraph g("no-fit");
  std::vector<OpId> in;
  for (int i = 0; i < 4; ++i) in.push_back(g.add_operation(input_op("i" + std::to_string(i))));
  g.add_operation(mix_op("a", {in[0], in[1]}, 10, 6));
  g.add_operation(mix_op("b", {in[2], in[3]}, 10, 6));
  g.validate();
  const auto schedule = sched::schedule_asap(g);
  auto problem = MappingProblem::build(g, schedule, arch::Architecture(5, 5));
  IlpMapperOptions options;
  options.time_limit_seconds = 30.0;
  EXPECT_FALSE(map_ilp(problem, options).has_value());
}

}  // namespace
}  // namespace fsyn::synth
