// Unit tests for the observability module: tracer/spans, trace-context
// propagation (W3C traceparent parse/format + ambient adoption), the
// always-on flight recorder, Chrome trace export (parsed back with a
// minimal JSON parser), Prometheus exposition/lint, latency histograms and
// multithreaded emission stresses (run under the TSan CI job too).
#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <cctype>
#include <chrono>
#include <cmath>
#include <cstdint>
#include <random>
#include <sstream>
#include <string>
#include <string_view>
#include <thread>
#include <vector>

#include "obs/flight_recorder.hpp"
#include "obs/histogram.hpp"
#include "obs/prometheus.hpp"
#include "obs/trace.hpp"
#include "obs/trace_context.hpp"
#include "obs/trace_export.hpp"

namespace fsyn::obs {
namespace {

/// Leaves the tracer disabled and drained when a test finishes, whatever
/// assertions failed in between, so tests cannot leak state at each other.
struct TracerGuard {
  TracerGuard() {
    Tracer::instance().drain();
    Tracer::instance().enable();
  }
  ~TracerGuard() {
    Tracer::instance().set_thread_name("");  // empty names are not exported
    Tracer::instance().disable();
    Tracer::instance().drain();
  }
};

/// Same discipline for the flight recorder.
struct FlightGuard {
  FlightGuard() {
    FlightRecorder::instance().clear();
    FlightRecorder::instance().enable();
  }
  ~FlightGuard() {
    FlightRecorder::instance().disable();
    FlightRecorder::instance().clear();
  }
};

// ---- minimal JSON parser (validation + key counting) -----------------------

/// Recursive-descent validator for the exporter's output.  Tracks the
/// number of elements of the top-level "traceEvents" array so tests can
/// assert the export is both *well-formed* and *complete*.
class JsonChecker {
 public:
  explicit JsonChecker(std::string_view text) : text_(text) {}

  bool parse() {
    skip_ws();
    if (!value(0)) return false;
    skip_ws();
    return pos_ == text_.size();
  }

  int trace_event_count() const { return trace_event_count_; }

 private:
  bool value(int depth) {
    if (depth > 64 || pos_ >= text_.size()) return false;
    switch (text_[pos_]) {
      case '{': return object(depth);
      case '[': return array(depth, false);
      case '"': return string();
      case 't': return literal("true");
      case 'f': return literal("false");
      case 'n': return literal("null");
      default: return number();
    }
  }

  bool object(int depth) {
    ++pos_;  // '{'
    skip_ws();
    if (peek() == '}') { ++pos_; return true; }
    for (;;) {
      skip_ws();
      const std::size_t key_start = pos_;
      if (!string()) return false;
      const bool is_trace_events =
          text_.substr(key_start, pos_ - key_start) == "\"traceEvents\"";
      skip_ws();
      if (peek() != ':') return false;
      ++pos_;
      skip_ws();
      if (is_trace_events && depth == 0) {
        if (peek() != '[' || !array(depth + 1, true)) return false;
      } else if (!value(depth + 1)) {
        return false;
      }
      skip_ws();
      if (peek() == ',') { ++pos_; continue; }
      if (peek() == '}') { ++pos_; return true; }
      return false;
    }
  }

  bool array(int depth, bool count_elements) {
    ++pos_;  // '['
    skip_ws();
    if (peek() == ']') { ++pos_; return true; }
    for (;;) {
      skip_ws();
      if (!value(depth + 1)) return false;
      if (count_elements) ++trace_event_count_;
      skip_ws();
      if (peek() == ',') { ++pos_; continue; }
      if (peek() == ']') { ++pos_; return true; }
      return false;
    }
  }

  bool string() {
    if (peek() != '"') return false;
    ++pos_;
    while (pos_ < text_.size()) {
      const char c = text_[pos_];
      if (static_cast<unsigned char>(c) < 0x20) return false;  // raw control
      if (c == '"') { ++pos_; return true; }
      if (c == '\\') {
        ++pos_;
        if (pos_ >= text_.size()) return false;
        const char esc = text_[pos_];
        if (esc == 'u') {
          for (int k = 1; k <= 4; ++k) {
            if (pos_ + static_cast<std::size_t>(k) >= text_.size() ||
                !std::isxdigit(static_cast<unsigned char>(text_[pos_ + static_cast<std::size_t>(k)]))) {
              return false;
            }
          }
          pos_ += 4;
        } else if (std::string_view("\"\\/bfnrt").find(esc) == std::string_view::npos) {
          return false;
        }
      }
      ++pos_;
    }
    return false;
  }

  bool number() {
    const std::size_t start = pos_;
    if (peek() == '-') ++pos_;
    while (std::isdigit(static_cast<unsigned char>(peek()))) ++pos_;
    if (peek() == '.') {
      ++pos_;
      if (!std::isdigit(static_cast<unsigned char>(peek()))) return false;
      while (std::isdigit(static_cast<unsigned char>(peek()))) ++pos_;
    }
    if (peek() == 'e' || peek() == 'E') {
      ++pos_;
      if (peek() == '+' || peek() == '-') ++pos_;
      if (!std::isdigit(static_cast<unsigned char>(peek()))) return false;
      while (std::isdigit(static_cast<unsigned char>(peek()))) ++pos_;
    }
    return pos_ > start && std::isdigit(static_cast<unsigned char>(text_[pos_ - 1]));
  }

  bool literal(std::string_view word) {
    if (text_.substr(pos_, word.size()) != word) return false;
    pos_ += word.size();
    return true;
  }

  char peek() const { return pos_ < text_.size() ? text_[pos_] : '\0'; }
  void skip_ws() {
    while (pos_ < text_.size() &&
           (text_[pos_] == ' ' || text_[pos_] == '\n' || text_[pos_] == '\t' ||
            text_[pos_] == '\r')) {
      ++pos_;
    }
  }

  std::string_view text_;
  std::size_t pos_ = 0;
  int trace_event_count_ = 0;
};

// ---- tracer / spans --------------------------------------------------------

TEST(Tracer, DisabledSpanRecordsNothing) {
  Tracer::instance().disable();
  Tracer::instance().drain();
  {
    Span span("test", "noop");
    span.arg("key", 1);
    EXPECT_FALSE(span.active());
  }
  EXPECT_FALSE(tracing_enabled());
  EXPECT_TRUE(Tracer::instance().drain().empty());
}

TEST(Tracer, SpansBalanceAndNest) {
  TracerGuard guard;
  {
    Span outer("test", "outer");
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
    {
      Span inner("test", "inner");
      inner.arg("depth", 2);
      std::this_thread::sleep_for(std::chrono::milliseconds(1));
    }
  }
  const auto events = Tracer::instance().drain();
  ASSERT_EQ(events.size(), 2u);
  // drain() sorts by start time: outer opened first.
  EXPECT_EQ(events[0].name, "outer");
  EXPECT_EQ(events[1].name, "inner");
  const auto& outer = events[0];
  const auto& inner = events[1];
  EXPECT_LE(outer.start_us, inner.start_us);
  EXPECT_GE(outer.start_us + outer.duration_us, inner.start_us + inner.duration_us);
  EXPECT_EQ(outer.tid, inner.tid);
}

TEST(Tracer, FinishEndsSpanEarlyAndIsIdempotent) {
  TracerGuard guard;
  Span span("test", "phase");
  ASSERT_TRUE(span.active());
  span.finish();
  EXPECT_FALSE(span.active());
  span.finish();  // second call must be a no-op
  const auto events = Tracer::instance().drain();
  ASSERT_EQ(events.size(), 1u);
  EXPECT_EQ(events[0].name, "phase");
}

TEST(Tracer, CounterAndInstantEventsCarryKindAndValue) {
  TracerGuard guard;
  Tracer::instance().counter("ilp", "bound", 41.5);
  Tracer::instance().instant("test", "marker");
  const auto events = Tracer::instance().drain();
  ASSERT_EQ(events.size(), 2u);
  EXPECT_EQ(events[0].kind, EventKind::kCounter);
  EXPECT_DOUBLE_EQ(events[0].value, 41.5);
  EXPECT_EQ(events[1].kind, EventKind::kInstant);
}

TEST(Tracer, ArgsSerializeAllTypes) {
  TracerGuard guard;
  {
    Span span("test", "typed");
    span.arg("str", std::string_view("v"));
    span.arg("cstr", "w");
    span.arg("int", 7);
    span.arg("u64", std::uint64_t{8});
    span.arg("dbl", 0.5);
    span.arg("flag", true);
  }
  const auto events = Tracer::instance().drain();
  ASSERT_EQ(events.size(), 1u);
  EXPECT_EQ(events[0].args,
            "\"str\":\"v\",\"cstr\":\"w\",\"int\":7,\"u64\":8,\"dbl\":0.5,\"flag\":true");
}

TEST(Tracer, DrainSurvivesExitedThreads) {
  TracerGuard guard;
  std::thread worker([] {
    Tracer::instance().set_thread_name("short-lived");
    Span span("test", "threaded");
  });
  worker.join();
  const auto names = Tracer::instance().thread_names();
  EXPECT_TRUE(std::any_of(names.begin(), names.end(),
                          [](const auto& entry) { return entry.second == "short-lived"; }));
  const auto events = Tracer::instance().drain();
  ASSERT_EQ(events.size(), 1u);
  EXPECT_EQ(events[0].name, "threaded");
  // The thread's buffer is retired by the drain; nothing resurfaces later.
  EXPECT_TRUE(Tracer::instance().drain().empty());
}

// ---- JSON helpers & exporter -----------------------------------------------

TEST(TraceJson, StringEscaping) {
  std::string out;
  append_json_string(out, "a\"b\\c\nd\te\x01" "f");
  EXPECT_EQ(out, "\"a\\\"b\\\\c\\nd\\te\\u0001f\"");
}

TEST(TraceJson, NumberFormatting) {
  std::string integral, fractional, huge, nan;
  append_json_number(integral, 42.0);
  append_json_number(fractional, 0.25);
  append_json_number(huge, 1e300);
  append_json_number(nan, std::nan(""));
  EXPECT_EQ(integral, "42");
  EXPECT_EQ(fractional, "0.25");
  EXPECT_EQ(huge.find("inf"), std::string::npos);
  EXPECT_EQ(nan, "0");  // non-finite must not leak into JSON
}

TEST(TraceExport, OutputParsesBackAsJson) {
  TracerGuard guard;
  Tracer::instance().set_thread_name("test \"main\"\n");
  {
    Span span("test", "outer \\ \"quoted\"\tname");
    span.arg("note", "line1\nline2");
    Span inner("test", "inner");
  }
  Tracer::instance().counter("test", "counter", 3.0);
  Tracer::instance().instant("test", "marker");

  std::ostringstream os;
  write_chrome_trace(os);
  const std::string text = os.str();

  JsonChecker checker(text);
  EXPECT_TRUE(checker.parse()) << text;
  // 1 metadata (thread name) + 2 spans + 1 counter + 1 instant.
  EXPECT_EQ(checker.trace_event_count(), 5);
  EXPECT_NE(text.find("\"displayTimeUnit\":\"ms\""), std::string::npos);
  EXPECT_NE(text.find("\"ph\":\"X\""), std::string::npos);
  EXPECT_NE(text.find("\"ph\":\"C\""), std::string::npos);
  EXPECT_NE(text.find("\"ph\":\"i\""), std::string::npos);
  EXPECT_NE(text.find("\"ph\":\"M\""), std::string::npos);
}

TEST(TraceExport, EmptyTraceIsValid) {
  Tracer::instance().disable();
  Tracer::instance().drain();
  std::ostringstream os;
  write_chrome_trace(os);
  const std::string text = os.str();
  JsonChecker checker(text);
  EXPECT_TRUE(checker.parse()) << text;
  EXPECT_EQ(checker.trace_event_count(), 0);
}

// ---- latency histogram -----------------------------------------------------

TEST(Histogram, BucketIndexIsMonotonicAndExactForSmallValues) {
  for (std::uint64_t ns = 0; ns < 2 * LatencyHistogram::kSubBuckets; ++ns) {
    EXPECT_EQ(LatencyHistogram::bucket_index(ns), static_cast<int>(ns));
  }
  int previous = -1;
  for (std::uint64_t ns = 1; ns < (std::uint64_t{1} << 40); ns = ns * 2 + 1) {
    const int index = LatencyHistogram::bucket_index(ns);
    EXPECT_GT(index, previous);
    EXPECT_LT(index, LatencyHistogram::kBucketCount);
    previous = index;
  }
}

TEST(Histogram, SingleValuePercentilesAreExact) {
  LatencyHistogram histogram;
  histogram.record(std::chrono::nanoseconds(1'234'567));
  const HistogramSnapshot snapshot = histogram.snapshot();
  EXPECT_EQ(snapshot.count, 1u);
  // min/max clamping makes a single observation exact at every percentile.
  EXPECT_DOUBLE_EQ(snapshot.percentile(50), 1'234'567e-9);
  EXPECT_DOUBLE_EQ(snapshot.percentile(99), 1'234'567e-9);
  EXPECT_DOUBLE_EQ(snapshot.min_seconds, 1'234'567e-9);
  EXPECT_DOUBLE_EQ(snapshot.max_seconds, 1'234'567e-9);
}

TEST(Histogram, PercentilesMatchReferenceWithinBucketError) {
  LatencyHistogram histogram;
  // 1..1000 microseconds, exactly once each: percentile p is p*10 us.
  for (int us = 1; us <= 1000; ++us) {
    histogram.record(std::chrono::microseconds(us));
  }
  const HistogramSnapshot snapshot = histogram.snapshot();
  EXPECT_EQ(snapshot.count, 1000u);
  EXPECT_NEAR(snapshot.sum_seconds, 1000.0 * 1001.0 / 2.0 * 1e-6, 1e-9);
  for (const double p : {10.0, 50.0, 90.0, 95.0, 99.0}) {
    const double reference = p * 10.0 * 1e-6;
    // The bucket midpoint is within 1/(2*kSubBuckets) ≈ 3.1% of any value
    // inside the bucket.
    EXPECT_NEAR(snapshot.percentile(p), reference, reference * 0.032) << "p" << p;
  }
  // The extreme percentiles stay within bucket error of the true extremes
  // (the clamp makes them exact only for single-bucket populations).
  EXPECT_NEAR(snapshot.percentile(0), snapshot.min_seconds, snapshot.min_seconds * 0.032);
  EXPECT_NEAR(snapshot.percentile(100), snapshot.max_seconds, snapshot.max_seconds * 0.032);
}

TEST(Histogram, JsonSnapshotParses) {
  LatencyHistogram histogram;
  histogram.record_seconds(0.5);
  histogram.record_seconds(1.5);
  const std::string json = histogram.snapshot().to_json();
  JsonChecker checker(json);
  EXPECT_TRUE(checker.parse()) << json;
  EXPECT_NE(json.find("\"count\":2"), std::string::npos);
  EXPECT_NE(json.find("\"p50\""), std::string::npos);
  EXPECT_NE(json.find("\"p99\""), std::string::npos);
}

TEST(Histogram, EmptySnapshotIsAllZero) {
  const HistogramSnapshot snapshot = LatencyHistogram{}.snapshot();
  EXPECT_EQ(snapshot.count, 0u);
  EXPECT_DOUBLE_EQ(snapshot.percentile(50), 0.0);
  EXPECT_DOUBLE_EQ(snapshot.min_seconds, 0.0);
  EXPECT_DOUBLE_EQ(snapshot.max_seconds, 0.0);
}

// ---- concurrency -----------------------------------------------------------

TEST(TracerStress, ConcurrentSpansCountersAndDrains) {
  TracerGuard guard;
  constexpr int kThreads = 8;
  constexpr int kSpansPerThread = 2000;

  std::atomic<bool> stop{false};
  std::atomic<std::size_t> drained{0};
  // A concurrent drainer races the emitters the way a trace export racing
  // live workers would.
  std::thread drainer([&] {
    while (!stop.load(std::memory_order_relaxed)) {
      drained.fetch_add(Tracer::instance().drain().size(), std::memory_order_relaxed);
      std::this_thread::yield();
    }
  });

  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([t] {
      Tracer::instance().set_thread_name("stress-" + std::to_string(t));
      for (int i = 0; i < kSpansPerThread; ++i) {
        Span span("stress", "work");
        span.arg("i", i);
        Tracer::instance().counter("stress", "progress", static_cast<double>(i));
      }
    });
  }
  for (std::thread& thread : threads) thread.join();
  stop.store(true, std::memory_order_relaxed);
  drainer.join();

  drained.fetch_add(Tracer::instance().drain().size(), std::memory_order_relaxed);
  // Every event emitted is drained exactly once, whichever drain got it.
  EXPECT_EQ(drained.load(), static_cast<std::size_t>(kThreads) * kSpansPerThread * 2);
  EXPECT_EQ(Tracer::instance().dropped_events(), 0u);
}

// ---- trace context ---------------------------------------------------------

TEST(TraceContext, MintedContextsAreValidAndDistinct) {
  const TraceContext a = make_trace_context();
  const TraceContext b = make_trace_context();
  EXPECT_TRUE(a.valid());
  EXPECT_TRUE(b.valid());
  EXPECT_NE(a.parent_span, 0u);
  EXPECT_FALSE(a == b);
  EXPECT_EQ(a.trace_id_hex().size(), 32u);
  for (const char c : a.trace_id_hex()) {
    EXPECT_TRUE(std::isxdigit(static_cast<unsigned char>(c)) &&
                !std::isupper(static_cast<unsigned char>(c)));
  }
}

TEST(TraceContext, TraceparentRoundTrips) {
  const TraceContext minted = make_trace_context();
  const std::string header = minted.traceparent();
  ASSERT_EQ(header.size(), 55u);
  EXPECT_EQ(header.substr(0, 3), "00-");
  TraceContext parsed;
  ASSERT_TRUE(parse_traceparent(header, &parsed));
  EXPECT_TRUE(minted == parsed);
}

TEST(TraceContext, ParseAcceptsCanonicalHeader) {
  TraceContext context;
  ASSERT_TRUE(parse_traceparent(
      "00-0af7651916cd43dd8448eb211c80319c-b7ad6b7169203331-01", &context));
  EXPECT_EQ(context.trace_hi, 0x0af7651916cd43ddull);
  EXPECT_EQ(context.trace_lo, 0x8448eb211c80319cull);
  EXPECT_EQ(context.parent_span, 0xb7ad6b7169203331ull);
}

TEST(TraceContext, ParseRejectsMalformedHeaders) {
  const char* const bad[] = {
      "",
      "00",
      "00-0af7651916cd43dd8448eb211c80319c-b7ad6b7169203331",        // no flags
      "00-0af7651916cd43dd8448eb211c80319c-b7ad6b7169203331-0",      // short flags
      "00-0AF7651916CD43DD8448EB211C80319C-b7ad6b7169203331-01",     // uppercase
      "00-00000000000000000000000000000000-b7ad6b7169203331-01",     // zero trace
      "00-0af7651916cd43dd8448eb211c80319c-0000000000000000-01",     // zero parent
      "ff-0af7651916cd43dd8448eb211c80319c-b7ad6b7169203331-01",     // version ff
      "00_0af7651916cd43dd8448eb211c80319c-b7ad6b7169203331-01",     // bad dash
      "00-0af7651916cd43dd8448eb211c8031-b7ad6b7169203331-01",       // short trace
      "00-0af7651916cd43dd8448eb211c80319c-b7ad6b716920333g-01",     // non-hex
  };
  for (const char* header : bad) {
    TraceContext context;
    context.trace_hi = 0xdead;
    EXPECT_FALSE(parse_traceparent(header, &context)) << header;
    EXPECT_EQ(context.trace_hi, 0xdeadu) << "out modified for: " << header;
  }
}

TEST(TraceContextFuzz, MutatedHeadersNeverCrashAndFailClosed) {
  // Byte-level mutations of a valid header: every outcome must be either a
  // clean reject or a successful parse of a *still-canonical* header —
  // never a crash, never an out-param touched on failure.
  const std::string valid = make_trace_context().traceparent();
  std::mt19937 rng(20260807);
  std::uniform_int_distribution<int> pos(0, static_cast<int>(valid.size()) - 1);
  std::uniform_int_distribution<int> byte(0, 255);
  for (int i = 0; i < 20000; ++i) {
    std::string mutated = valid;
    const int mutations = 1 + (i % 3);
    for (int m = 0; m < mutations; ++m) {
      mutated[static_cast<std::size_t>(pos(rng))] = static_cast<char>(byte(rng));
    }
    TraceContext context;
    if (parse_traceparent(mutated, &context)) {
      EXPECT_TRUE(context.valid());
      // Re-serialization is canonical: same ids, version 00, sampled.
      TraceContext again;
      ASSERT_TRUE(parse_traceparent(context.traceparent(), &again));
      EXPECT_TRUE(context == again);
    } else {
      EXPECT_FALSE(context.valid());  // untouched default
    }
    // Truncations and extensions fail closed too.
    TraceContext ignored;
    EXPECT_FALSE(parse_traceparent(mutated.substr(0, mutated.size() / 2), &ignored));
    EXPECT_FALSE(parse_traceparent(mutated + "x", &ignored));
  }
}

TEST(TraceContext, ScopeInstallsAndRestores) {
  EXPECT_FALSE(current_trace().valid());
  const TraceContext outer = make_trace_context();
  {
    TraceContextScope scope(outer);
    EXPECT_TRUE(current_trace() == outer);
    const TraceContext inner = make_trace_context();
    {
      TraceContextScope nested(inner);
      EXPECT_TRUE(current_trace() == inner);
    }
    EXPECT_TRUE(current_trace() == outer);
  }
  EXPECT_FALSE(current_trace().valid());
}

TEST(TraceContext, SpansAdoptAmbientContextAndNest) {
  TracerGuard guard;
  const TraceContext context = make_trace_context();
  {
    TraceContextScope scope(context);
    Span outer("test", "outer");
    { Span inner("test", "inner"); }
  }
  { Span bare("test", "bare"); }  // outside any scope: no trace ids

  const auto events = Tracer::instance().drain();
  ASSERT_EQ(events.size(), 3u);
  const auto find = [&](std::string_view name) -> const TraceEvent& {
    for (const TraceEvent& event : events) {
      if (event.name == name) return event;
    }
    static TraceEvent none;
    ADD_FAILURE() << "missing event " << name;
    return none;
  };
  const TraceEvent& outer = find("outer");
  const TraceEvent& inner = find("inner");
  const TraceEvent& bare = find("bare");
  EXPECT_EQ(outer.trace_hi, context.trace_hi);
  EXPECT_EQ(outer.trace_lo, context.trace_lo);
  EXPECT_EQ(outer.parent_span, context.parent_span);
  ASSERT_NE(outer.span_id, 0u);
  // The inner span parents to the outer span, same trace.
  EXPECT_EQ(inner.trace_lo, context.trace_lo);
  EXPECT_EQ(inner.parent_span, outer.span_id);
  EXPECT_NE(inner.span_id, outer.span_id);
  EXPECT_EQ(bare.trace_hi | bare.trace_lo, 0u);
  EXPECT_EQ(bare.parent_span, 0u);
}

// ---- flight recorder -------------------------------------------------------

TEST(FlightRecorder, DisabledRecordsNothing) {
  FlightRecorder::instance().disable();
  FlightRecorder::instance().clear();
  Tracer::instance().disable();
  {
    Span span("test", "invisible");
    EXPECT_FALSE(span.active());
  }
  EXPECT_TRUE(FlightRecorder::instance().snapshot().empty());
}

TEST(FlightRecorder, RecordsSpansIndependentlyOfTracer) {
  FlightGuard guard;
  Tracer::instance().disable();
  Tracer::instance().drain();
  {
    Span span("test", "flight-only");
    EXPECT_TRUE(span.active());
  }
  // Flight recorder got the span; the (disabled) tracer did not.
  const auto events = FlightRecorder::instance().snapshot();
  ASSERT_EQ(events.size(), 1u);
  EXPECT_EQ(events[0].name, "flight-only");
  EXPECT_TRUE(Tracer::instance().drain().empty());
}

TEST(FlightRecorder, RingWrapsKeepingNewestEvents) {
  FlightGuard guard;
  Tracer::instance().disable();
  const std::size_t total = FlightRecorder::kRingCapacity + 100;
  for (std::size_t i = 0; i < total; ++i) {
    Span span("test", std::to_string(i));
  }
  const auto events = FlightRecorder::instance().snapshot();
  ASSERT_EQ(events.size(), FlightRecorder::kRingCapacity);
  EXPECT_GE(FlightRecorder::instance().total_recorded(), total);
  // Exactly the newest kRingCapacity survive; the first 100 are gone.
  unsigned long long min_index = total;
  for (const TraceEvent& event : events) {
    min_index = std::min(min_index, std::stoull(event.name));
  }
  EXPECT_EQ(min_index, 100u);
}

TEST(FlightRecorder, SnapshotDoesNotDrain) {
  FlightGuard guard;
  Tracer::instance().disable();
  { Span span("test", "sticky"); }
  EXPECT_EQ(FlightRecorder::instance().snapshot().size(), 1u);
  EXPECT_EQ(FlightRecorder::instance().snapshot().size(), 1u);  // still there
}

TEST(FlightRecorder, DumpJsonParsesAndCarriesTraceIds) {
  FlightGuard guard;
  Tracer::instance().disable();
  const TraceContext context = make_trace_context();
  {
    TraceContextScope scope(context);
    Span span("test", "dumped");
  }
  const std::string json = FlightRecorder::instance().dump_json();
  JsonChecker checker(json);
  EXPECT_TRUE(checker.parse()) << json;
  EXPECT_GE(checker.trace_event_count(), 1);
  EXPECT_NE(json.find(context.trace_id_hex()), std::string::npos);
}

TEST(FlightRecorderStress, ConcurrentWritersAndSnapshots) {
  FlightGuard guard;
  Tracer::instance().disable();
  constexpr int kThreads = 8;
  constexpr int kSpansPerThread = 4000;

  std::atomic<bool> stop{false};
  std::thread snapshotter([&] {
    while (!stop.load(std::memory_order_relaxed)) {
      const auto events = FlightRecorder::instance().snapshot();
      // Bounded by construction, whatever the writers are doing.
      EXPECT_LE(events.size(), static_cast<std::size_t>(kThreads + 2) *
                                   FlightRecorder::kRingCapacity);
      std::this_thread::yield();
    }
  });

  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([t] {
      const TraceContext context = make_trace_context();
      TraceContextScope scope(context);
      for (int i = 0; i < kSpansPerThread; ++i) {
        Span span("stress", "flight");
        span.arg("t", t);
      }
    });
  }
  for (std::thread& thread : threads) thread.join();
  stop.store(true, std::memory_order_relaxed);
  snapshotter.join();

  EXPECT_GE(FlightRecorder::instance().total_recorded(),
            static_cast<std::uint64_t>(kThreads) * kSpansPerThread);
}

// ---- Prometheus exposition -------------------------------------------------

TEST(Prometheus, WriterEmitsWellFormedFamilies) {
  PrometheusWriter writer;
  writer.family("demo_jobs_total", "Jobs by state.", "counter");
  writer.sample("demo_jobs_total", "state=\"done\"", 3);
  writer.sample("demo_jobs_total", "state=\"failed\"", 0);
  writer.family("demo_depth", "Queue depth.", "gauge");
  writer.sample("demo_depth", "", 7.5);
  const std::string text = writer.str();
  std::string error;
  EXPECT_TRUE(lint_prometheus(text, &error)) << error << "\n" << text;
  EXPECT_NE(text.find("# TYPE demo_jobs_total counter"), std::string::npos);
  EXPECT_NE(text.find("demo_jobs_total{state=\"done\"} 3\n"), std::string::npos);
}

TEST(Prometheus, WriterEmitsCumulativeHistogram) {
  LatencyHistogram histogram;
  histogram.record_seconds(0.0004);
  histogram.record_seconds(0.3);
  histogram.record_seconds(45.0);
  PrometheusWriter writer;
  writer.family("demo_latency_seconds", "Latency.", "histogram");
  writer.histogram("demo_latency_seconds", "stage=\"total\"", histogram.snapshot());
  const std::string text = writer.str();
  std::string error;
  EXPECT_TRUE(lint_prometheus(text, &error)) << error << "\n" << text;
  EXPECT_NE(text.find("le=\"+Inf\"} 3\n"), std::string::npos);
  EXPECT_NE(text.find("demo_latency_seconds_count{stage=\"total\"} 3\n"),
            std::string::npos);
}

TEST(Prometheus, LintCatchesFormatErrors) {
  std::string error;
  // Counter not ending in _total.
  EXPECT_FALSE(lint_prometheus("# TYPE bad counter\nbad 1\n", &error));
  // Missing trailing newline.
  EXPECT_FALSE(lint_prometheus("# TYPE x_total counter\nx_total 1", &error));
  // Non-monotonic histogram buckets.
  EXPECT_FALSE(lint_prometheus(
      "# TYPE h histogram\n"
      "h_bucket{le=\"1\"} 5\nh_bucket{le=\"2\"} 3\nh_bucket{le=\"+Inf\"} 5\n"
      "h_sum 1\nh_count 5\n",
      &error));
  // _count disagreeing with the +Inf bucket.
  EXPECT_FALSE(lint_prometheus(
      "# TYPE h histogram\n"
      "h_bucket{le=\"+Inf\"} 5\nh_sum 1\nh_count 4\n",
      &error));
  // Negative counter value.
  EXPECT_FALSE(lint_prometheus("# TYPE x_total counter\nx_total -1\n", &error));
  // Well-formed control.
  EXPECT_TRUE(lint_prometheus("# TYPE x_total counter\nx_total 1\n", &error)) << error;
}

TEST(HistogramStress, ConcurrentRecordsKeepTotals) {
  LatencyHistogram histogram;
  constexpr int kThreads = 8;
  constexpr int kPerThread = 50'000;
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&histogram, t] {
      for (int i = 0; i < kPerThread; ++i) {
        histogram.record(std::chrono::nanoseconds(1000 + 13 * ((t + i) % 100)));
      }
    });
  }
  for (std::thread& thread : threads) thread.join();
  const HistogramSnapshot snapshot = histogram.snapshot();
  EXPECT_EQ(snapshot.count, static_cast<std::uint64_t>(kThreads) * kPerThread);
  std::uint64_t bucket_total = 0;
  for (const std::uint64_t bucket : snapshot.buckets) bucket_total += bucket;
  EXPECT_EQ(bucket_total, snapshot.count);
  EXPECT_DOUBLE_EQ(snapshot.min_seconds, 1000e-9);
  EXPECT_DOUBLE_EQ(snapshot.max_seconds, (1000 + 13 * 99) * 1e-9);
}

}  // namespace
}  // namespace fsyn::obs
