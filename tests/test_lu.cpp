// Unit tests for the sparse LU basis factorization (ilp/lu.hpp): solve
// correctness against a dense Gaussian-elimination reference, singular and
// numerically rank-deficient bases, product-form eta updates (including the
// drift they accumulate versus a fresh refactorization), and the stability
// rejection of near-zero update pivots.
#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "ilp/lu.hpp"
#include "util/rng.hpp"

namespace fsyn::ilp {
namespace {

/// Column-major dense matrix with the sparse handoff LuFactors expects.
struct DenseBasis {
  int m = 0;
  std::vector<double> a;  // column-major, m*m

  explicit DenseBasis(int size) : m(size), a(static_cast<std::size_t>(size) * size, 0.0) {}

  double& at(int row, int col) { return a[static_cast<std::size_t>(col) * m + row]; }
  double at(int row, int col) const { return a[static_cast<std::size_t>(col) * m + row]; }

  void to_sparse(std::vector<int>& col_start, std::vector<int>& rows,
                 std::vector<double>& vals) const {
    col_start.assign(1, 0);
    rows.clear();
    vals.clear();
    for (int j = 0; j < m; ++j) {
      for (int i = 0; i < m; ++i) {
        if (at(i, j) != 0.0) {
          rows.push_back(i);
          vals.push_back(at(i, j));
        }
      }
      col_start.push_back(static_cast<int>(rows.size()));
    }
  }

  bool factorize(LuFactors& lu) const {
    std::vector<int> col_start, rows;
    std::vector<double> vals;
    to_sparse(col_start, rows, vals);
    return lu.factorize(m, col_start, rows, vals);
  }

  /// Reference solve A x = b via partial-pivoting Gaussian elimination.
  /// Returns false when the matrix is singular to working precision.
  bool solve(std::vector<double> b, std::vector<double>& x) const {
    std::vector<double> work = a;
    std::vector<int> perm(static_cast<std::size_t>(m));
    for (int i = 0; i < m; ++i) perm[static_cast<std::size_t>(i)] = i;
    auto w = [&](int row, int col) -> double& {
      return work[static_cast<std::size_t>(col) * m + row];
    };
    for (int k = 0; k < m; ++k) {
      int pivot = k;
      for (int i = k + 1; i < m; ++i) {
        if (std::fabs(w(i, k)) > std::fabs(w(pivot, k))) pivot = i;
      }
      if (std::fabs(w(pivot, k)) < 1e-12) return false;
      if (pivot != k) {
        for (int j = 0; j < m; ++j) std::swap(w(k, j), w(pivot, j));
        std::swap(b[static_cast<std::size_t>(k)], b[static_cast<std::size_t>(pivot)]);
      }
      for (int i = k + 1; i < m; ++i) {
        const double f = w(i, k) / w(k, k);
        if (f == 0.0) continue;
        for (int j = k; j < m; ++j) w(i, j) -= f * w(k, j);
        b[static_cast<std::size_t>(i)] -= f * b[static_cast<std::size_t>(k)];
      }
    }
    x.assign(static_cast<std::size_t>(m), 0.0);
    for (int k = m - 1; k >= 0; --k) {
      double sum = b[static_cast<std::size_t>(k)];
      for (int j = k + 1; j < m; ++j) sum -= w(k, j) * x[static_cast<std::size_t>(j)];
      x[static_cast<std::size_t>(k)] = sum / w(k, k);
    }
    return true;
  }

  /// Reference transposed solve A^T x = b.
  bool solve_transposed(const std::vector<double>& b, std::vector<double>& x) const {
    DenseBasis t(m);
    for (int i = 0; i < m; ++i) {
      for (int j = 0; j < m; ++j) t.at(i, j) = at(j, i);
    }
    return t.solve(b, x);
  }
};

DenseBasis random_basis(int m, std::uint64_t seed, double density) {
  Rng rng(seed);
  DenseBasis basis(m);
  // Nonzero diagonal keeps the draw nonsingular with overwhelming
  // probability; off-diagonal entries appear with the given density.
  for (int i = 0; i < m; ++i) basis.at(i, i) = 1.0 + rng.next_double();
  for (int i = 0; i < m; ++i) {
    for (int j = 0; j < m; ++j) {
      if (i != j && rng.next_double() < density) {
        basis.at(i, j) = rng.next_double() * 4.0 - 2.0;
      }
    }
  }
  return basis;
}

std::vector<double> random_rhs(int m, std::uint64_t seed) {
  Rng rng(seed);
  std::vector<double> b(static_cast<std::size_t>(m));
  for (double& v : b) v = rng.next_double() * 10.0 - 5.0;
  return b;
}

double max_abs_diff(const std::vector<double>& a, const std::vector<double>& b) {
  double worst = 0.0;
  for (std::size_t i = 0; i < a.size(); ++i) worst = std::max(worst, std::fabs(a[i] - b[i]));
  return worst;
}

TEST(LuFactors, IdentitySolvesAreIdentity) {
  const int m = 7;
  DenseBasis eye(m);
  for (int i = 0; i < m; ++i) eye.at(i, i) = 1.0;
  LuFactors lu;
  ASSERT_TRUE(eye.factorize(lu));
  EXPECT_TRUE(lu.valid());
  EXPECT_EQ(lu.eta_count(), 0);

  std::vector<double> x = random_rhs(m, 3);
  const std::vector<double> expect = x;
  lu.ftran(x);
  EXPECT_LE(max_abs_diff(x, expect), 1e-14);
  lu.btran(x);
  EXPECT_LE(max_abs_diff(x, expect), 1e-14);
}

TEST(LuFactors, PermutationBasisRoundTrips) {
  // B = a permutation matrix: ftran must invert the permutation exactly.
  const int m = 6;
  const int perm[m] = {3, 0, 5, 1, 2, 4};  // column j has its 1 in row perm[j]
  DenseBasis basis(m);
  for (int j = 0; j < m; ++j) basis.at(perm[j], j) = 1.0;
  LuFactors lu;
  ASSERT_TRUE(basis.factorize(lu));

  std::vector<double> b = random_rhs(m, 11);
  std::vector<double> expect;
  ASSERT_TRUE(basis.solve(b, expect));
  std::vector<double> x = b;
  lu.ftran(x);
  EXPECT_LE(max_abs_diff(x, expect), 1e-13);
}

TEST(LuFactors, FtranMatchesDenseReference) {
  for (const std::uint64_t seed : {1u, 2u, 3u, 4u, 5u}) {
    for (const double density : {0.1, 0.4, 0.9}) {
      const int m = 12;
      const DenseBasis basis = random_basis(m, seed, density);
      LuFactors lu;
      ASSERT_TRUE(basis.factorize(lu)) << "seed " << seed << " density " << density;

      const std::vector<double> b = random_rhs(m, seed * 97 + 1);
      std::vector<double> expect;
      ASSERT_TRUE(basis.solve(b, expect));
      std::vector<double> x = b;
      lu.ftran(x);
      EXPECT_LE(max_abs_diff(x, expect), 1e-9) << "seed " << seed << " density " << density;
    }
  }
}

TEST(LuFactors, BtranMatchesDenseReference) {
  for (const std::uint64_t seed : {7u, 8u, 9u}) {
    const int m = 10;
    const DenseBasis basis = random_basis(m, seed, 0.5);
    LuFactors lu;
    ASSERT_TRUE(basis.factorize(lu));

    const std::vector<double> b = random_rhs(m, seed * 31 + 2);
    std::vector<double> expect;
    ASSERT_TRUE(basis.solve_transposed(b, expect));
    std::vector<double> x = b;
    lu.btran(x);
    EXPECT_LE(max_abs_diff(x, expect), 1e-9) << "seed " << seed;
  }
}

TEST(LuFactors, SingularBasisIsRejected) {
  // Exactly repeated column.
  DenseBasis dup(4);
  for (int i = 0; i < 4; ++i) dup.at(i, i) = 1.0;
  for (int i = 0; i < 4; ++i) dup.at(i, 2) = dup.at(i, 1);
  LuFactors lu;
  EXPECT_FALSE(dup.factorize(lu));
  EXPECT_FALSE(lu.valid());

  // Structurally empty column.
  DenseBasis hole(4);
  for (int i = 0; i < 4; ++i) hole.at(i, i) = 1.0;
  hole.at(2, 2) = 0.0;
  EXPECT_FALSE(hole.factorize(lu));

  // Numerically rank deficient: third column = sum of the first two plus
  // noise far below the pivot tolerance.
  DenseBasis nearly(3);
  nearly.at(0, 0) = 1.0;
  nearly.at(1, 1) = 1.0;
  nearly.at(2, 2) = 0.0;
  nearly.at(0, 2) = 1.0;
  nearly.at(1, 2) = 1.0;
  nearly.at(0, 1) = 0.0;
  nearly.at(2, 0) = 0.0;
  // col2 = col0 + col1 exactly in rows 0,1 and zero in row 2 => singular.
  EXPECT_FALSE(nearly.factorize(lu));
}

TEST(LuFactors, FactorizeRecoversAfterSingularReject) {
  // A failed factorize must not poison the next one (workspace reuse).
  DenseBasis bad(5);  // all zero
  LuFactors lu;
  EXPECT_FALSE(bad.factorize(lu));

  const DenseBasis good = random_basis(5, 21, 0.6);
  ASSERT_TRUE(good.factorize(lu));
  const std::vector<double> b = random_rhs(5, 22);
  std::vector<double> expect;
  ASSERT_TRUE(good.solve(b, expect));
  std::vector<double> x = b;
  lu.ftran(x);
  EXPECT_LE(max_abs_diff(x, expect), 1e-9);
}

/// Replaces dense column `slot` and mirrors the change through lu.update()
/// the way the simplex does: FTRAN the entering column, then append an eta.
bool replace_column(DenseBasis& basis, LuFactors& lu, int slot,
                    const std::vector<double>& entering) {
  std::vector<double> w = entering;
  lu.ftran(w);
  if (!lu.update(slot, w)) return false;
  for (int i = 0; i < basis.m; ++i) basis.at(i, slot) = entering[static_cast<std::size_t>(i)];
  return true;
}

TEST(LuFactors, EtaUpdatesTrackColumnReplacements) {
  const int m = 9;
  DenseBasis basis = random_basis(m, 31, 0.5);
  LuFactors lu;
  ASSERT_TRUE(basis.factorize(lu));

  Rng rng(77);
  for (int round = 0; round < 6; ++round) {
    const int slot = rng.next_int(0, m - 1);
    std::vector<double> entering(static_cast<std::size_t>(m));
    for (double& v : entering) v = rng.next_double() * 2.0 - 1.0;
    entering[static_cast<std::size_t>(slot)] += 2.0;  // keep it well-conditioned
    ASSERT_TRUE(replace_column(basis, lu, slot, entering)) << "round " << round;
  }
  EXPECT_EQ(lu.eta_count(), 6);

  const std::vector<double> b = random_rhs(m, 78);
  std::vector<double> expect;
  ASSERT_TRUE(basis.solve(b, expect));
  std::vector<double> x = b;
  lu.ftran(x);
  EXPECT_LE(max_abs_diff(x, expect), 1e-8);

  std::vector<double> bt = random_rhs(m, 79);
  std::vector<double> expect_t;
  ASSERT_TRUE(basis.solve_transposed(bt, expect_t));
  std::vector<double> xt = bt;
  lu.btran(xt);
  EXPECT_LE(max_abs_diff(xt, expect_t), 1e-8);
}

TEST(LuFactors, RefactorizationBeatsLongEtaFileDrift) {
  // Drive a long eta file, then refactorize the same basis from scratch:
  // both must still solve correctly, and the refactorized solve must be at
  // least as accurate — the property the refactor threshold relies on.
  const int m = 8;
  DenseBasis basis = random_basis(m, 41, 0.6);
  LuFactors lu;
  ASSERT_TRUE(basis.factorize(lu));

  Rng rng(42);
  int applied = 0;
  for (int round = 0; round < 40; ++round) {
    const int slot = rng.next_int(0, m - 1);
    std::vector<double> entering(static_cast<std::size_t>(m));
    for (double& v : entering) v = rng.next_double() * 2.0 - 1.0;
    entering[static_cast<std::size_t>(slot)] += 1.5;
    if (replace_column(basis, lu, slot, entering)) ++applied;
  }
  ASSERT_GT(applied, 20);  // the generator keeps pivots stable
  EXPECT_EQ(lu.eta_count(), applied);
  EXPECT_GT(lu.eta_nnz(), 0);

  const std::vector<double> b = random_rhs(m, 43);
  std::vector<double> expect;
  ASSERT_TRUE(basis.solve(b, expect));

  std::vector<double> with_etas = b;
  lu.ftran(with_etas);
  const double eta_err = max_abs_diff(with_etas, expect);

  LuFactors fresh;
  ASSERT_TRUE(basis.factorize(fresh));
  EXPECT_EQ(fresh.eta_count(), 0);
  std::vector<double> refactored = b;
  fresh.ftran(refactored);
  const double fresh_err = max_abs_diff(refactored, expect);

  EXPECT_LE(eta_err, 1e-7);
  EXPECT_LE(fresh_err, eta_err + 1e-12);
}

TEST(LuFactors, TinyUpdatePivotIsRejected) {
  const int m = 5;
  DenseBasis basis = random_basis(m, 51, 0.7);
  LuFactors lu;
  ASSERT_TRUE(basis.factorize(lu));

  // Entering column orthogonal-ish to slot 2: w[2] ~ 0 after FTRAN makes
  // the replacement basis singular, so update() must refuse the eta.
  std::vector<double> entering(static_cast<std::size_t>(m), 0.0);
  for (int i = 0; i < m; ++i) entering[static_cast<std::size_t>(i)] = basis.at(i, 0);
  // Column 0 re-entering at slot 2 gives FTRAN'd w = e_0, so w[2] = 0.
  std::vector<double> w = entering;
  lu.ftran(w);
  ASSERT_LT(std::fabs(w[2]), 1e-9);
  EXPECT_FALSE(lu.update(2, w));
  // The factorization itself stays usable for the caller's refactorize.
  EXPECT_TRUE(lu.valid());
}

TEST(LuFactors, RankRevealingOnArrowheadBasis) {
  // Arrowhead matrix: dense first row/column plus diagonal — a classic
  // fill-in trap.  Markowitz should keep the factors sparse (pivoting the
  // diagonal first), and the solves must stay accurate either way.
  const int m = 14;
  DenseBasis basis(m);
  basis.at(0, 0) = 2.0;
  for (int i = 1; i < m; ++i) {
    basis.at(i, i) = 1.0 + 0.1 * i;
    basis.at(0, i) = 1.0;
    basis.at(i, 0) = 1.0;
  }
  LuFactors lu;
  ASSERT_TRUE(basis.factorize(lu));
  // Dense LU of an arrowhead fills ~m^2/2; Markowitz keeps it linear.
  EXPECT_LT(lu.lu_nnz(), 6 * m);

  const std::vector<double> b = random_rhs(m, 61);
  std::vector<double> expect;
  ASSERT_TRUE(basis.solve(b, expect));
  std::vector<double> x = b;
  lu.ftran(x);
  EXPECT_LE(max_abs_diff(x, expect), 1e-9);
}

}  // namespace
}  // namespace fsyn::ilp
