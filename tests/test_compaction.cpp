// Tests for storage-aware schedule compaction.
#include <gtest/gtest.h>

#include "assay/benchmarks.hpp"
#include "assay/parser.hpp"
#include "sched/compaction.hpp"
#include "synth/synthesis.hpp"

namespace fsyn::sched {
namespace {

TEST(Compaction, TotalStorageTimeOfPcrAsap) {
  const auto g = assay::make_pcr();
  const Schedule s = schedule_asap(g);
  // From Fig. 9: o5 waits 18-15 = 3 (o2's product), o7 waits 25-15 = 10
  // (o6's product); all other ops start at their first arrival.
  EXPECT_EQ(total_storage_time(s), 13);
}

TEST(Compaction, DelaysProducersTowardConsumers) {
  // a finishes long before b is consumed together with it; compaction
  // pushes a (and nothing else) later.
  const auto g = assay::parse_assay(R"(
assay gap
input i1
input i2
input i3
input i4
mix quick volume 8 duration 2 from i1 i2
mix slow volume 8 duration 12 from i3 i4
mix join volume 10 duration 4 from quick slow
)");
  const Policy policy = make_policy(g, 1);  // enough mixers to keep ASAP shape
  const Schedule original = schedule_asap(g);
  const Schedule compacted = compact_schedule(original, policy);

  EXPECT_EQ(compacted.makespan(), original.makespan());
  EXPECT_LT(total_storage_time(compacted), total_storage_time(original));
  // 'join' starts at 15; 'quick' can start as late as 15 - 3 - 2 = 10.
  int quick_start = -1, join_start = -1;
  for (const auto& op : g.operations()) {
    if (op.name == "quick") quick_start = compacted.start_of(op.id);
    if (op.name == "join") join_start = compacted.start_of(op.id);
  }
  EXPECT_EQ(join_start, 15);
  EXPECT_EQ(quick_start, 10);
  EXPECT_EQ(total_storage_time(compacted), 0);
}

TEST(Compaction, PreservesValidityOnAllBenchmarks) {
  for (const auto& name : assay::extended_benchmark_names()) {
    const auto g = assay::make_benchmark(name);
    for (int increments : {0, 2}) {
      const Policy policy = make_policy(g, increments);
      const Schedule original = schedule_with_policy(g, policy);
      const Schedule compacted = compact_schedule(original, policy);
      EXPECT_NO_THROW(compacted.validate()) << name;
      EXPECT_EQ(compacted.makespan(), original.makespan()) << name;
      EXPECT_LE(total_storage_time(compacted), total_storage_time(original)) << name;
    }
  }
}

TEST(Compaction, RespectsDeviceCapacity) {
  // One mixer of each size: delaying must never double-book it.
  const auto g = assay::make_pcr();
  const Policy policy = make_policy(g, 0);
  const Schedule compacted = compact_schedule(schedule_with_policy(g, policy), policy);
  std::vector<std::pair<int, int>> windows;
  for (const auto& op : g.operations()) {
    if (op.kind == assay::OpKind::kMix && op.volume == 8) {
      windows.push_back({compacted.start_of(op.id),
                         compacted.end_of(op.id) + compacted.transport_delay});
    }
  }
  for (std::size_t i = 0; i < windows.size(); ++i) {
    for (std::size_t j = i + 1; j < windows.size(); ++j) {
      const bool disjoint =
          windows[i].second <= windows[j].first || windows[j].second <= windows[i].first;
      EXPECT_TRUE(disjoint);
    }
  }
}

TEST(Compaction, IdempotentOnCompactedSchedules) {
  const auto g = assay::make_mixing_tree();
  const Policy policy = make_policy(g, 1);
  const Schedule once = compact_schedule(schedule_with_policy(g, policy), policy);
  const Schedule twice = compact_schedule(once, policy);
  EXPECT_EQ(once.start, twice.start);
}

TEST(Compaction, ShrinksTheRequiredChip) {
  // Less storage waiting means less concurrent area demand; the compacted
  // schedule never needs a bigger matrix.
  const auto g = assay::make_interpolating_dilution();
  const Policy policy = make_policy(g, 1);
  const Schedule original = schedule_with_policy(g, policy);
  const Schedule compacted = compact_schedule(original, policy);
  const int side_original = arch::Architecture::sized_for(g, original, 1.0).width();
  const int side_compacted = arch::Architecture::sized_for(g, compacted, 1.0).width();
  EXPECT_LE(side_compacted, side_original);
}

}  // namespace
}  // namespace fsyn::sched
