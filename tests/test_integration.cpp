// Integration pins: the headline Table-1 reproduction bands, golden Fig. 9
// output, custom port configurations through the full pipeline, and the LP
// dump.  These tests freeze the observable behaviour the documentation
// claims (EXPERIMENTS.md), so regressions in any stage surface here.
#include <gtest/gtest.h>

#include "assay/benchmarks.hpp"
#include "ilp/model.hpp"
#include "report/table1.hpp"
#include "sched/gantt.hpp"
#include "sched/list_scheduler.hpp"
#include "synth/synthesis.hpp"

namespace fsyn {
namespace {

TEST(Integration, Table1AveragesStayInThePaperBand) {
  // Paper: imp_1vs 55.76 %, imp_2vs 72.97 %, imp_v 10.62 %.  Pin this
  // reproduction to generous bands around its documented values so any
  // stage regression (scheduling, mapping, routing, accounting) trips it.
  const auto rows = report::run_full_table();
  ASSERT_EQ(rows.size(), 12u);
  double imp1 = 0.0, imp2 = 0.0, impv = 0.0;
  for (const auto& row : rows) {
    EXPECT_GT(row.improvement1(), 0.30) << row.case_name << ' ' << row.policy_label;
    EXPECT_GT(row.improvement2(), 0.55) << row.case_name << ' ' << row.policy_label;
    imp1 += row.improvement1();
    imp2 += row.improvement2();
    impv += row.valve_improvement();
  }
  imp1 /= 12.0;
  imp2 /= 12.0;
  impv /= 12.0;
  EXPECT_GT(imp1, 0.48);
  EXPECT_LT(imp1, 0.68);
  EXPECT_GT(imp2, 0.65);
  EXPECT_LT(imp2, 0.80);
  EXPECT_GT(impv, 0.0);
}

TEST(Integration, Table1VsTmaxColumnIsExact) {
  // The traditional-side columns must match the paper in all 12 rows.
  const auto rows = report::run_full_table();
  const int expected[12] = {160, 80, 80, 280, 200, 160, 360, 240, 200, 320, 280, 240};
  for (std::size_t i = 0; i < rows.size(); ++i) {
    EXPECT_EQ(rows[i].vs_tmax, expected[i]) << rows[i].case_name << ' '
                                            << rows[i].policy_label;
  }
}

TEST(Integration, Fig9GanttGoldenOutput) {
  const auto g = assay::make_pcr();
  const std::string chart = sched::render_gantt(sched::schedule_asap(g));
  const std::string expected =
      "    0    5    10   15   20   25    tu\n"
      "o1  ===============               \n"
      "o2  ============                  \n"
      "o3  ===                           \n"
      "o4  ===                           \n"
      "o5                 ...====        \n"
      "o6        ======                  \n"
      "o7                 ..........==== \n";
  EXPECT_EQ(chart, expected);
}

TEST(Integration, CustomPortLayoutFlowsThroughThePipeline) {
  // Ports on the left edge instead of the default right edge; the problem,
  // router and accounting must all honour it.
  const auto g = assay::make_pcr();
  const auto schedule = sched::schedule_asap(g);
  arch::Architecture chip(10, 10);
  chip.set_ports({arch::ChipPort{"inA", Point{0, 9}, true},
                  arch::ChipPort{"inB", Point{0, 4}, true},
                  arch::ChipPort{"waste", Point{0, 0}, false}});
  auto problem = synth::MappingProblem::build(g, schedule, std::move(chip));
  const auto mapping = synth::map_heuristic(problem);
  ASSERT_TRUE(mapping.has_value());
  const auto routing = route::route_all(problem, mapping->placement);
  ASSERT_TRUE(routing.success);
  route::validate_routing(problem, mapping->placement, routing);
  for (const auto& path : routing.paths) {
    if (path.kind == route::TransportKind::kFill) {
      EXPECT_EQ(path.cells.front().x, 0) << path.label;  // left edge
    }
    if (path.kind == route::TransportKind::kDrain) {
      EXPECT_EQ(path.cells.back(), (Point{0, 0})) << path.label;
    }
  }
}

TEST(Integration, LpDumpRoundsTripStructure) {
  ilp::Model m;
  const auto x = m.add_integer(0, 10, "x");
  const auto b = m.add_binary("pick");
  m.add_constraint(2.0 * x + (-5.0) * b, ilp::Relation::kLessEqual, 7.0, "cap");
  m.set_objective(3.0 * x + 1.0 * b, ilp::Sense::kMaximize);
  const std::string lp = m.to_lp_string();
  EXPECT_NE(lp.find("Maximize"), std::string::npos);
  EXPECT_NE(lp.find("cap: 2 x - 5 pick <= 7"), std::string::npos);
  EXPECT_NE(lp.find("0 <= x <= 10"), std::string::npos);
  EXPECT_NE(lp.find("General\n x"), std::string::npos);
  EXPECT_NE(lp.find("Binary\n pick"), std::string::npos);
  EXPECT_NE(lp.find("End"), std::string::npos);
}

}  // namespace
}  // namespace fsyn
