// Tests for the Table-1 reporting pipeline: row metrics, improvement
// arithmetic and the formatted table.
#include <gtest/gtest.h>

#include "assay/benchmarks.hpp"
#include "report/table1.hpp"

namespace fsyn::report {
namespace {

synth::SynthesisOptions fast_options() {
  synth::SynthesisOptions options;
  options.heuristic.sa_iterations = 4000;
  options.chip_sweep = 1;
  return options;
}

TEST(Table1Row, ImprovementArithmetic) {
  Table1Row row;
  row.vs_tmax = 160;
  row.vs1_max = 45;
  row.vs2_max = 35;
  row.traditional_valves = 83;
  row.our_valves = 71;
  EXPECT_NEAR(row.improvement1(), 0.71875, 1e-9);
  EXPECT_NEAR(row.improvement2(), 0.78125, 1e-9);
  EXPECT_NEAR(row.valve_improvement(), 1.0 - 71.0 / 83.0, 1e-9);
}

TEST(Table1Row, ZeroBaselineGivesZeroImprovement) {
  Table1Row row;
  EXPECT_EQ(row.improvement1(), 0.0);
  EXPECT_EQ(row.valve_improvement(), 0.0);
}

TEST(RunCase, PcrP1ReproducesTable1Row) {
  const auto g = assay::make_pcr();
  const Table1Row row = run_case(g, 0, "p1", fast_options());
  EXPECT_EQ(row.case_name, "pcr");
  EXPECT_EQ(row.total_ops, 15);
  EXPECT_EQ(row.mixing_ops, 7);
  EXPECT_EQ(row.device_count, 3);
  EXPECT_EQ(row.binding, "1-0-4-2");
  EXPECT_EQ(row.vs_tmax, 160);
  EXPECT_EQ(row.vs1_pump, 40);
  EXPECT_EQ(row.vs2_pump, 30);
  EXPECT_GT(row.improvement1(), 0.6);   // paper: 71.88%
  EXPECT_GT(row.improvement2(), 0.7);   // paper: 78.13%
  EXPECT_GT(row.runtime_seconds, 0.0);
}

TEST(RunCase, PolicyLabelAndIncrementsFlowThrough) {
  const auto g = assay::make_pcr();
  const Table1Row p2 = run_case(g, 1, "p2", fast_options());
  EXPECT_EQ(p2.policy_label, "p2");
  EXPECT_EQ(p2.binding, "1-0-(2,2)-2");
  EXPECT_EQ(p2.vs_tmax, 80);
  EXPECT_EQ(p2.device_count, 4);
}

TEST(FormatTable, ContainsHeaderRowsAndAverage) {
  std::vector<Table1Row> rows(2);
  rows[0].case_name = "pcr";
  rows[0].total_ops = 15;
  rows[0].mixing_ops = 7;
  rows[0].policy_label = "p1";
  rows[0].binding = "1-0-4-2";
  rows[0].vs_tmax = 160;
  rows[0].vs1_max = 45;
  rows[0].vs1_pump = 40;
  rows[0].vs2_max = 35;
  rows[0].vs2_pump = 30;
  rows[0].traditional_valves = 83;
  rows[0].our_valves = 71;
  rows[1] = rows[0];
  rows[1].case_name = "mixing_tree";
  const std::string text = format_table(rows);
  EXPECT_NE(text.find("vs_tmax"), std::string::npos);
  EXPECT_NE(text.find("15(7)"), std::string::npos);
  EXPECT_NE(text.find("45(40)"), std::string::npos);
  EXPECT_NE(text.find("71.88%"), std::string::npos);
  EXPECT_NE(text.find("average"), std::string::npos);
}

TEST(FormatTable, EmptyRowsStillRender) {
  const std::string text = format_table({});
  EXPECT_NE(text.find("average"), std::string::npos);
}

}  // namespace
}  // namespace fsyn::report
