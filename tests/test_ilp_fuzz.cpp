// Randomized cross-check of the MILP solver against exhaustive enumeration.
//
// Small all-integer models (up to 6 variables with negative bounds, up to 10
// constraints including equalities) are solved four ways — warm-started
// best-first (the default), cold LPs, depth-first diving, and
// most-fractional branching — and every configuration must agree with the
// brute-force optimum.  A separate test drives LpSolver::resolve directly
// and compares each dual-simplex reoptimization against a cold solve of the
// same bound box.
#include <chrono>
#include <cmath>
#include <cstdint>
#include <optional>
#include <vector>

#include <gtest/gtest.h>

#include "ilp/branch_and_bound.hpp"
#include "ilp/model.hpp"
#include "ilp/simplex.hpp"
#include "util/rng.hpp"

namespace fsyn::ilp {
namespace {

struct FuzzInstance {
  Model model;
  std::vector<int> lower, upper;  ///< integer bound box, model order
};

/// Random all-integer model.  Half the instances anchor all constraints on
/// a random integer point inside the box (guaranteed feasible); the rest
/// use fully random right-hand sides, so infeasible models are exercised
/// too.
FuzzInstance make_instance(std::uint64_t seed) {
  Rng rng(seed);
  FuzzInstance out;
  const int n = rng.next_int(2, 6);
  std::vector<int> anchor;
  for (int j = 0; j < n; ++j) {
    const int lo = rng.next_int(-3, 0);
    const int hi = rng.next_int(0, 4);
    out.lower.push_back(lo);
    out.upper.push_back(hi);
    out.model.add_integer(lo, hi);
    anchor.push_back(rng.next_int(lo, hi));
  }
  const bool anchored = rng.next_bool(0.5);
  const int rows = rng.next_int(1, 10);
  for (int i = 0; i < rows; ++i) {
    LinearExpr expr;
    double anchor_value = 0.0;
    int terms = 0;
    for (int j = 0; j < n; ++j) {
      if (!rng.next_bool(0.7)) continue;
      int coeff = rng.next_int(-4, 4);
      if (coeff == 0) coeff = 1;
      expr.add_term(VarId{j}, coeff);
      anchor_value += coeff * anchor[static_cast<std::size_t>(j)];
      ++terms;
    }
    if (terms == 0) {
      expr.add_term(VarId{0}, 1.0);
      anchor_value = anchor[0];
    }
    const int relation = rng.next_int(0, 2);
    if (relation == 0) {
      const double rhs = anchored ? anchor_value + rng.next_int(0, 4) : rng.next_int(-6, 10);
      out.model.add_constraint(expr, Relation::kLessEqual, rhs);
    } else if (relation == 1) {
      const double rhs = anchored ? anchor_value - rng.next_int(0, 4) : rng.next_int(-10, 6);
      out.model.add_constraint(expr, Relation::kGreaterEqual, rhs);
    } else {
      const double rhs = anchored ? anchor_value : rng.next_int(-4, 4);
      out.model.add_constraint(expr, Relation::kEqual, rhs);
    }
  }
  LinearExpr objective;
  for (int j = 0; j < n; ++j) {
    objective.add_term(VarId{j}, rng.next_int(-5, 5));
  }
  out.model.set_objective(objective, rng.next_bool(0.5) ? Sense::kMinimize : Sense::kMaximize);
  return out;
}

/// Brute force over every integer point in the bound box.
std::optional<double> enumerate_best(const FuzzInstance& instance) {
  const int n = instance.model.variable_count();
  std::vector<double> point(static_cast<std::size_t>(n));
  std::optional<double> best;
  const double sign = instance.model.objective_sign();
  std::vector<int> cursor(instance.lower.begin(), instance.lower.end());
  for (;;) {
    for (int j = 0; j < n; ++j) point[static_cast<std::size_t>(j)] = cursor[static_cast<std::size_t>(j)];
    if (instance.model.is_feasible(point)) {
      const double value = instance.model.objective_value(point);
      if (!best.has_value() || sign * value < sign * *best) best = value;
    }
    int j = 0;
    while (j < n && ++cursor[static_cast<std::size_t>(j)] > instance.upper[static_cast<std::size_t>(j)]) {
      cursor[static_cast<std::size_t>(j)] = instance.lower[static_cast<std::size_t>(j)];
      ++j;
    }
    if (j == n) break;
  }
  return best;
}

void check_config(const FuzzInstance& instance, const std::optional<double>& best,
                  const MilpOptions& options, const char* label) {
  const MilpResult result = solve_milp(instance.model, options);
  if (best.has_value()) {
    ASSERT_EQ(result.status, MilpStatus::kOptimal) << label;
    EXPECT_NEAR(result.objective, *best, 1e-6) << label;
    EXPECT_TRUE(instance.model.is_feasible(result.values)) << label;
  } else {
    EXPECT_EQ(result.status, MilpStatus::kInfeasible) << label;
  }
}

class MilpFuzz : public ::testing::TestWithParam<int> {};

TEST_P(MilpFuzz, AllConfigurationsMatchEnumeration) {
  const FuzzInstance instance = make_instance(0xF002 + 977ULL * static_cast<std::uint64_t>(GetParam()));
  const std::optional<double> best = enumerate_best(instance);

  MilpOptions defaults;  // warm-started, best-first, pseudocosts
  check_config(instance, best, defaults, "default");

  MilpOptions cold = defaults;
  cold.lp_warm_start = false;
  check_config(instance, best, cold, "cold-lp");

  MilpOptions diving = defaults;
  diving.node_order = NodeOrder::kDepthFirst;
  diving.pseudocost_branching = false;
  check_config(instance, best, diving, "depth-first/most-fractional");

  MilpOptions no_presolve = defaults;
  no_presolve.presolve = false;
  check_config(instance, best, no_presolve, "no-presolve");

  // Root cuts must never change the optimum, only the tree size: the
  // cuts-off run has to land on the same enumeration optimum as the
  // default (cuts-on) run above.
  MilpOptions no_cuts = defaults;
  no_cuts.cut_options.enabled = false;
  check_config(instance, best, no_cuts, "no-cuts");

  // The dense explicit-inverse basis is the reference implementation the
  // sparse LU must agree with; dantzig pricing is the reference for devex.
  MilpOptions dense = defaults;
  dense.lp.basis = BasisKind::kDense;
  check_config(instance, best, dense, "dense-basis");

  MilpOptions dantzig = defaults;
  dantzig.lp.basis = BasisKind::kDense;
  dantzig.lp.pricing = PricingRule::kDantzig;
  check_config(instance, best, dantzig, "dense-basis/dantzig");

  // The parallel tree search must prove the same optimum at every worker
  // count (the search order differs, the fixpoint cannot), with either
  // basis representation.
  for (const int threads : {1, 2, 4}) {
    MilpOptions parallel = defaults;
    parallel.threads = threads;
    check_config(instance, best, parallel,
                 threads == 1 ? "parallel-1" : (threads == 2 ? "parallel-2" : "parallel-4"));

    MilpOptions parallel_dense = dense;
    parallel_dense.threads = threads;
    check_config(instance, best, parallel_dense,
                 threads == 1 ? "parallel-1/dense"
                              : (threads == 2 ? "parallel-2/dense" : "parallel-4/dense"));

    MilpOptions parallel_no_cuts = no_cuts;
    parallel_no_cuts.threads = threads;
    check_config(instance, best, parallel_no_cuts,
                 threads == 1 ? "parallel-1/no-cuts"
                              : (threads == 2 ? "parallel-2/no-cuts" : "parallel-4/no-cuts"));
  }

  MilpOptions lockstep = defaults;
  lockstep.threads = 4;
  lockstep.deterministic = true;
  check_config(instance, best, lockstep, "deterministic-4");
}

INSTANTIATE_TEST_SUITE_P(Seeds, MilpFuzz, ::testing::Range(0, 80));

/// Deterministic mode contract: same instance, same thread count -> the
/// whole result is bit-identical, node counts and LP iterations included.
TEST(ParallelBranchAndBound, DeterministicModeIsBitIdentical) {
  for (int round = 0; round < 12; ++round) {
    const FuzzInstance instance = make_instance(0xDE7 + 131ULL * static_cast<std::uint64_t>(round));
    MilpOptions options;
    options.threads = 4;
    options.deterministic = true;
    const MilpResult first = solve_milp(instance.model, options);
    const MilpResult second = solve_milp(instance.model, options);
    ASSERT_EQ(first.status, second.status) << "round " << round;
    EXPECT_EQ(first.nodes, second.nodes) << "round " << round;
    EXPECT_EQ(first.lp_iterations, second.lp_iterations) << "round " << round;
    EXPECT_EQ(first.objective, second.objective) << "round " << round;  // bit-equal doubles
    EXPECT_EQ(first.best_bound, second.best_bound) << "round " << round;
    EXPECT_EQ(first.values, second.values) << "round " << round;
    ASSERT_EQ(first.worker_stats.size(), second.worker_stats.size()) << "round " << round;
    for (std::size_t w = 0; w < first.worker_stats.size(); ++w) {
      EXPECT_EQ(first.worker_stats[w].nodes, second.worker_stats[w].nodes)
          << "round " << round << " worker " << w;
      EXPECT_EQ(first.worker_stats[w].lp_iterations, second.worker_stats[w].lp_iterations)
          << "round " << round << " worker " << w;
    }
  }
}

/// Serial (threads = 0) and parallel results carry consistent telemetry.
TEST(ParallelBranchAndBound, TelemetryShape) {
  // Scan for an instance the search actually explores: presolve-infeasible
  // models return before any worker launches (threads stays 0 by design).
  std::optional<FuzzInstance> found;
  MilpResult s;
  for (std::uint64_t seed = 0xF002; seed < 0xF002 + 64; ++seed) {
    FuzzInstance candidate = make_instance(seed);
    MilpOptions serial;
    // Root cuts close most fuzz instances in a node or two; this test wants
    // an actual tree so the worker counters have something to count.
    serial.cut_options.enabled = false;
    s = solve_milp(candidate.model, serial);
    if (s.status == MilpStatus::kOptimal && s.nodes >= 4) {
      found = std::move(candidate);
      break;
    }
  }
  ASSERT_TRUE(found.has_value()) << "no searchable fuzz instance in seed range";
  const FuzzInstance& instance = *found;

  EXPECT_EQ(s.threads, 0);
  EXPECT_EQ(s.steals, 0);
  EXPECT_TRUE(s.worker_stats.empty());
  EXPECT_EQ(s.parallel_efficiency, 1.0);

  MilpOptions parallel;
  parallel.threads = 2;
  parallel.cut_options.enabled = false;
  const MilpResult p = solve_milp(instance.model, parallel);
  EXPECT_EQ(p.threads, 2);
  ASSERT_EQ(p.worker_stats.size(), 2u);
  long worker_nodes = 0;
  std::int64_t worker_iters = 0;
  for (const MilpWorkerStats& w : p.worker_stats) {
    worker_nodes += w.nodes;
    worker_iters += w.lp_iterations;
  }
  EXPECT_EQ(worker_nodes, p.nodes);
  EXPECT_EQ(worker_iters, p.lp_iterations);
  EXPECT_GE(p.parallel_efficiency, 0.0);
  EXPECT_LE(p.parallel_efficiency, 1.0);
}

/// Mid-search cancellation: the token is honored promptly in both parallel
/// modes and the best incumbent found so far is still reported.
TEST(ParallelBranchAndBound, CancellationStopsTheSearch) {
  // A big enough box that exhausting the tree without pruning would take a
  // while; cancellation must cut it short regardless.
  const FuzzInstance instance = make_instance(0xF002 + 977ULL * 3);

  for (const bool deterministic : {false, true}) {
    CancelSource source;
    source.cancel();  // already cancelled before the solve starts
    MilpOptions options;
    options.threads = 4;
    options.deterministic = deterministic;
    options.cancel = source.token();
    const MilpResult result = solve_milp(instance.model, options);
    // No node was expanded: either the limit path reports the cut-short
    // search, or presolve alone proved infeasibility before it started.
    EXPECT_TRUE(result.status == MilpStatus::kLimit || result.status == MilpStatus::kInfeasible)
        << (deterministic ? "deterministic" : "async");
    EXPECT_NE(result.status, MilpStatus::kOptimal);
  }

  // A deadline that fires mid-search: the solve returns (promptly) with a
  // coherent status.
  CancelSource deadline;
  deadline.set_deadline_after(std::chrono::milliseconds(30));
  MilpOptions options;
  options.threads = 4;
  options.cancel = deadline.token();
  const MilpResult result = solve_milp(instance.model, options);
  EXPECT_TRUE(result.status == MilpStatus::kOptimal || result.status == MilpStatus::kFeasible ||
              result.status == MilpStatus::kLimit || result.status == MilpStatus::kInfeasible);
}

/// Drives the persistent solver's warm path directly: every dual-simplex
/// resolve after a bound tightening must match a cold solve of the same box.
TEST(LpSolverWarmStart, ResolveMatchesColdSolve) {
  Rng rng(0xC01D);
  for (int round = 0; round < 20; ++round) {
    const FuzzInstance instance = make_instance(0xAB5E + 31ULL * static_cast<std::uint64_t>(round));
    const Model& model = instance.model;
    const int n = model.variable_count();
    std::vector<double> lower(instance.lower.begin(), instance.lower.end());
    std::vector<double> upper(instance.upper.begin(), instance.upper.end());

    LpSolver solver(model);
    LpResult warm = solver.solve(lower, upper);
    for (int step = 0; step < 12; ++step) {
      // Tighten a random variable's box (the branching pattern), sometimes
      // relaxing back to the original bounds.
      const int j = rng.next_int(0, n - 1);
      const std::size_t sj = static_cast<std::size_t>(j);
      if (rng.next_bool(0.25)) {
        lower[sj] = instance.lower[sj];
        upper[sj] = instance.upper[sj];
      } else if (rng.next_bool(0.5)) {
        upper[sj] = std::max(lower[sj], upper[sj] - 1.0);
      } else {
        lower[sj] = std::min(upper[sj], lower[sj] + 1.0);
      }
      warm = solver.resolve(lower, upper);
      const LpResult cold = solve_lp(model, {}, &lower, &upper);
      ASSERT_EQ(warm.status == LpStatus::kOptimal, cold.status == LpStatus::kOptimal)
          << "round " << round << " step " << step;
      if (cold.status == LpStatus::kOptimal) {
        EXPECT_NEAR(warm.objective, cold.objective, 1e-6)
            << "round " << round << " step " << step;
      }
    }
    EXPECT_GT(solver.stats().warm_solves + solver.stats().cold_solves, 0);
  }
}

/// A warm resolve whose dual reoptimization crosses the cutoff while still
/// primal infeasible must report kCutoff and stay reusable afterwards.
TEST(LpSolverWarmStart, CutoffPrunesAndKeepsBasis) {
  Model model;
  const VarId x = model.add_continuous(0.0, 10.0);
  const VarId y = model.add_continuous(0.0, 10.0);
  const VarId z = model.add_continuous(0.0, 10.0);
  model.add_constraint(1.0 * x + 1.0 * y + 1.0 * z, Relation::kGreaterEqual, 6.0);
  model.set_objective(1.0 * x + 2.0 * y + 3.0 * z, Sense::kMinimize);

  LpSolver solver(model);
  std::vector<double> lower{0.0, 0.0, 0.0}, upper{10.0, 10.0, 10.0};
  const LpResult root = solver.solve(lower, upper);
  ASSERT_EQ(root.status, LpStatus::kOptimal);
  EXPECT_NEAR(root.objective, 6.0, 1e-9);  // x = 6

  // Force x <= 1 and y <= 1: the optimum jumps to x=1, y=1, z=4 -> 15.
  // The first dual pivot already pushes the (monotone) dual objective past
  // 8 with the basis still primal infeasible, so the resolve must stop
  // with kCutoff instead of finishing the reoptimization.
  upper[0] = 1.0;
  upper[1] = 1.0;
  const LpResult pruned = solver.resolve(lower, upper, /*cutoff=*/8.0);
  EXPECT_EQ(pruned.status, LpStatus::kCutoff);
  EXPECT_TRUE(solver.has_basis());

  // The solver must still produce exact optima afterwards.
  const LpResult exact = solver.resolve(lower, upper);
  ASSERT_EQ(exact.status, LpStatus::kOptimal);
  EXPECT_NEAR(exact.objective, 15.0, 1e-6);

  // A resolve that regains primal feasibility while still below the cutoff
  // finishes to the exact optimum even when that optimum exceeds the
  // cutoff (a stronger prune for B&B than the bound alone).
  upper[0] = 10.0;
  upper[1] = 10.0;
  lower[1] = 3.0;
  const LpResult absorbed = solver.resolve(lower, upper, /*cutoff=*/8.0);
  ASSERT_EQ(absorbed.status, LpStatus::kOptimal);
  EXPECT_NEAR(absorbed.objective, 9.0, 1e-6);  // x = 3, y = 3
}

}  // namespace
}  // namespace fsyn::ilp
