// Tests for the concurrent batch-synthesis service (src/svc/): thread pool
// semantics, cooperative cancellation, the canonical-key LRU result cache,
// portfolio racing, and parity between pooled and sequential synthesis.
#include <atomic>
#include <chrono>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "assay/benchmarks.hpp"
#include "sched/list_scheduler.hpp"
#include "svc/service.hpp"
#include "util/cancel.hpp"

namespace fsyn {
namespace {

using namespace std::chrono_literals;

// ---- thread pool ----

TEST(ThreadPool, RunsEveryTask) {
  svc::ThreadPool pool(4);
  std::atomic<int> done{0};
  for (int i = 0; i < 100; ++i) {
    ASSERT_TRUE(pool.submit([&done] { done.fetch_add(1); }));
  }
  pool.shutdown();
  EXPECT_EQ(done.load(), 100);
}

TEST(ThreadPool, RejectPolicyBouncesWhenFull) {
  svc::ThreadPool pool(1, /*queue_capacity=*/1, svc::OverflowPolicy::kReject);
  std::atomic<bool> release{false};
  // Occupy the single worker, then fill the single queue slot.
  ASSERT_TRUE(pool.submit([&release] {
    while (!release.load()) std::this_thread::sleep_for(1ms);
  }));
  // The worker may not have dequeued yet; poll until the blocker runs and
  // one task sits in the queue.
  bool queued = false;
  for (int attempt = 0; attempt < 2000 && !queued; ++attempt) {
    if (pool.queue_depth() == 0) {
      queued = pool.submit([] {});
    } else {
      queued = true;
    }
    if (!queued) std::this_thread::sleep_for(1ms);
  }
  ASSERT_TRUE(queued);
  // Queue full + busy worker: the next submission must bounce.
  EXPECT_FALSE(pool.submit([] {}));
  release.store(true);
  pool.shutdown();
}

TEST(ThreadPool, ShutdownDrainsQueuedTasks) {
  std::atomic<int> done{0};
  {
    svc::ThreadPool pool(1);
    for (int i = 0; i < 20; ++i) {
      pool.submit([&done] {
        std::this_thread::sleep_for(1ms);
        done.fetch_add(1);
      });
    }
  }  // destructor = shutdown
  EXPECT_EQ(done.load(), 20);
}

// ---- cancellation primitives ----

TEST(CancelToken, InertTokenNeverFires) {
  CancelToken token;
  EXPECT_FALSE(token.valid());
  EXPECT_FALSE(token.cancelled());
  EXPECT_NO_THROW(token.check("inert"));
}

TEST(CancelToken, ExplicitCancelAndDeadline) {
  CancelSource source;
  const CancelToken token = source.token();
  EXPECT_FALSE(token.cancelled());
  source.cancel();
  EXPECT_TRUE(token.cancelled());
  EXPECT_THROW(token.check("loop"), CancelledError);

  CancelSource timed;
  timed.set_deadline_after(-1ms);  // already past
  EXPECT_TRUE(timed.token().cancelled());
}

TEST(CancelToken, ChainedSourceSeesParent) {
  CancelSource parent;
  CancelSource child(parent.token());
  EXPECT_FALSE(child.token().cancelled());
  parent.cancel();
  EXPECT_TRUE(child.token().cancelled());
  // And the reverse does not hold: cancelling a child leaves the parent.
  CancelSource other(parent.token());
  EXPECT_TRUE(other.token().cancelled());  // parent already fired
  CancelSource fresh_parent;
  CancelSource fresh_child(fresh_parent.token());
  fresh_child.cancel();
  EXPECT_FALSE(fresh_parent.token().cancelled());
}

// ---- service jobs ----

svc::JobSpec small_job(std::uint64_t seed = 2015) {
  svc::JobSpec spec;
  spec.graph = assay::make_benchmark("pcr");
  spec.name = "pcr";
  spec.asap = true;
  spec.options.grid_size = 10;  // fixed chip: no sweep, fast and focused
  spec.options.heuristic.seed = seed;
  return spec;
}

TEST(BatchService, DeadlineCancelsInsteadOfSolving) {
  svc::BatchService::Config config;
  config.workers = 1;
  svc::BatchService service(config);

  svc::JobSpec spec;
  spec.graph = assay::make_benchmark("exponential_dilution");  // minutes if run fully
  spec.name = "exponential_dilution";
  spec.deadline = std::chrono::milliseconds(1);

  const auto started = std::chrono::steady_clock::now();
  const svc::JobResult result = service.submit(std::move(spec)).get();
  const double elapsed =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - started).count();

  EXPECT_EQ(result.status, svc::JobStatus::kCancelled);
  EXPECT_EQ(result.result, nullptr);
  EXPECT_FALSE(result.error.empty());
  // Orders of magnitude below a full solve; generous bound for slow CI.
  EXPECT_LT(elapsed, 10.0);
  EXPECT_EQ(service.metrics().jobs_cancelled, 1);
}

TEST(BatchService, CacheHitIsBitIdenticalAndSkipsMappers) {
  svc::BatchService service;

  const svc::JobResult first = service.submit(small_job()).get();
  ASSERT_EQ(first.status, svc::JobStatus::kDone);
  EXPECT_FALSE(first.cache_hit);
  const long mapper_runs = service.metrics().mapper_invocations;
  EXPECT_GE(mapper_runs, 1);

  const svc::JobResult second = service.submit(small_job()).get();
  ASSERT_EQ(second.status, svc::JobStatus::kDone);
  EXPECT_TRUE(second.cache_hit);
  EXPECT_EQ(second.winner, "cache");
  // The cache returns the stored object itself: bit-identical by identity.
  EXPECT_EQ(second.result.get(), first.result.get());
  // And no mapper ran for the hit.
  EXPECT_EQ(service.metrics().mapper_invocations, mapper_runs);
  EXPECT_EQ(service.metrics().cache.hits, 1);

  // A different seed is a different canonical key.
  const svc::JobResult third = service.submit(small_job(99)).get();
  ASSERT_EQ(third.status, svc::JobStatus::kDone);
  EXPECT_FALSE(third.cache_hit);
}

TEST(BatchService, LruEvictionIsCountedAndEvictedKeyMisses) {
  svc::BatchService::Config config;
  config.workers = 1;
  config.cache_capacity = 1;
  svc::BatchService service(config);

  ASSERT_EQ(service.submit(small_job(1)).get().status, svc::JobStatus::kDone);
  ASSERT_EQ(service.submit(small_job(2)).get().status, svc::JobStatus::kDone);  // evicts 1
  EXPECT_EQ(service.metrics().cache.evictions, 1);

  const svc::JobResult again = service.submit(small_job(1)).get();
  ASSERT_EQ(again.status, svc::JobStatus::kDone);
  EXPECT_FALSE(again.cache_hit);  // was evicted, re-solved
}

TEST(BatchService, RejectPolicyReportsRejectedStatus) {
  svc::BatchService::Config config;
  config.workers = 1;
  config.queue_capacity = 1;
  config.overflow = svc::OverflowPolicy::kReject;
  svc::BatchService service(config);

  // Saturate: one running + one queued + overflow.  Deadlines keep the
  // blockers cheap; their own status does not matter here.
  std::vector<std::future<svc::JobResult>> futures;
  int rejected = 0;
  for (int i = 0; i < 8; ++i) {
    svc::JobSpec spec = small_job(static_cast<std::uint64_t>(100 + i));
    spec.deadline = std::chrono::milliseconds(200);
    futures.push_back(service.submit(std::move(spec)));
  }
  for (auto& future : futures) {
    if (future.get().status == svc::JobStatus::kRejected) ++rejected;
  }
  EXPECT_EQ(service.metrics().jobs_rejected, rejected);
  EXPECT_EQ(service.metrics().jobs_submitted, 8);
}

TEST(BatchService, PoolResultsMatchSequentialRun) {
  // The acceptance bar: same seeds => same designs, pool or no pool.
  const assay::SequencingGraph graph = assay::make_benchmark("pcr");
  const sched::Schedule schedule = sched::schedule_asap(graph);
  synth::SynthesisOptions options;
  options.grid_size = 10;
  const synth::SynthesisResult sequential = synth::synthesize(graph, schedule, options);

  svc::BatchService::Config config;
  config.workers = 4;
  svc::BatchService service(config);
  std::vector<std::future<svc::JobResult>> futures;
  for (int i = 0; i < 4; ++i) futures.push_back(service.submit(small_job()));
  for (auto& future : futures) {
    const svc::JobResult result = future.get();
    ASSERT_EQ(result.status, svc::JobStatus::kDone);
    EXPECT_EQ(result.result->vs1_max, sequential.vs1_max);
    EXPECT_EQ(result.result->vs2_max, sequential.vs2_max);
    EXPECT_EQ(result.result->valve_count, sequential.valve_count);
    EXPECT_EQ(result.result->chip_width, sequential.chip_width);
  }
}

TEST(BatchService, PortfolioRaceProducesFeasibleResultAndCancelsLosers) {
  svc::BatchService::Config config;
  config.workers = 1;
  config.portfolio.enabled = true;
  config.portfolio.heuristic_arms = 2;
  svc::BatchService service(config);

  const svc::JobResult result = service.submit(small_job()).get();
  ASSERT_EQ(result.status, svc::JobStatus::kDone);
  ASSERT_NE(result.result, nullptr);
  EXPECT_GT(result.result->vs1_max, 0);
  EXPECT_GT(result.result->valve_count, 0);
  // pcr is small enough for the ILP arm to join: 2 heuristic + 1 ilp.
  const svc::MetricsSnapshot metrics = service.metrics();
  EXPECT_EQ(metrics.race_arms_started, 3);
  EXPECT_TRUE(result.winner.rfind("heuristic", 0) == 0 || result.winner == "ilp")
      << result.winner;
  // The winner cancelled everyone else exactly once.
  EXPECT_EQ(metrics.race_arms_cancelled, 2);
}

TEST(BatchService, RaceRespectsJobDeadline) {
  svc::BatchService::Config config;
  config.workers = 1;
  config.portfolio.enabled = true;
  svc::BatchService service(config);

  svc::JobSpec spec;
  spec.graph = assay::make_benchmark("exponential_dilution");
  spec.name = "exponential_dilution";
  spec.deadline = std::chrono::milliseconds(1);
  const svc::JobResult result = service.submit(std::move(spec)).get();
  EXPECT_EQ(result.status, svc::JobStatus::kCancelled);
}

// ---- canonical keys ----

TEST(ResultCache, CanonicalKeyIgnoresNamesButSeesStructure) {
  const assay::SequencingGraph pcr = assay::make_benchmark("pcr");
  const sched::Schedule schedule = sched::schedule_asap(pcr);
  synth::SynthesisOptions options;

  const svc::CacheKey base = svc::canonical_key(pcr, schedule, options);
  EXPECT_EQ(svc::canonical_key(pcr, schedule, options), base);  // deterministic

  synth::SynthesisOptions reseeded = options;
  reseeded.heuristic.seed = 4242;
  EXPECT_NE(svc::canonical_key(pcr, schedule, reseeded), base);

  synth::SynthesisOptions sized = options;
  sized.grid_size = 12;
  EXPECT_NE(svc::canonical_key(pcr, schedule, sized), base);

  const assay::SequencingGraph other = assay::make_benchmark("invitro");
  const sched::Schedule other_schedule = sched::schedule_asap(other);
  EXPECT_NE(svc::canonical_key(other, other_schedule, options), base);

  // ILP thread settings are result-affecting (the async parallel search
  // may tie-break to a different optimal placement), so they must key.
  synth::SynthesisOptions threaded = options;
  threaded.ilp.threads = 4;
  EXPECT_NE(svc::canonical_key(pcr, schedule, threaded), base);
}

TEST(ResultCache, ShardedCacheSurvivesConcurrentHammering) {
  svc::ResultCache cache(64);
  EXPECT_GT(cache.shard_count(), 1u);  // capacity 64 -> all 8 shards
  auto payload = std::make_shared<const synth::SynthesisResult>();

  // 4 threads, disjoint-ish key streams: every insert must be retrievable
  // from the same thread right away, and the summed counters must add up.
  constexpr int kThreads = 4;
  constexpr int kOpsPerThread = 5000;
  std::vector<std::thread> threads;
  std::atomic<int> self_misses{0};
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      for (int op = 0; op < kOpsPerThread; ++op) {
        const svc::CacheKey key =
            0x9e3779b97f4a7c15ULL * static_cast<svc::CacheKey>(t * kOpsPerThread + op + 1);
        cache.insert(key, payload);
        if (cache.lookup(key) == nullptr) self_misses.fetch_add(1);
      }
    });
  }
  for (std::thread& thread : threads) thread.join();

  // Same-thread insert-then-lookup can only miss if a concurrent insert
  // storm evicted the key from its shard between the two calls; with 64
  // slots over 8 shards and 4 writers that is possible but must be rare.
  EXPECT_LT(self_misses.load(), kThreads * kOpsPerThread / 10);
  const svc::CacheStats stats = cache.stats();
  EXPECT_EQ(stats.hits + stats.misses, kThreads * kOpsPerThread);
  EXPECT_LE(stats.entries, stats.capacity);
  EXPECT_EQ(stats.capacity, 64u);
}

TEST(ResultCache, CapacityZeroDisablesButCountsMisses) {
  svc::ResultCache cache(0);
  EXPECT_EQ(cache.shard_count(), 0u);
  auto payload = std::make_shared<const synth::SynthesisResult>();
  cache.insert(1, payload);
  EXPECT_EQ(cache.lookup(1), nullptr);
  EXPECT_EQ(cache.lookup(2), nullptr);
  const svc::CacheStats stats = cache.stats();
  EXPECT_EQ(stats.hits, 0);
  EXPECT_EQ(stats.misses, 2);
  EXPECT_EQ(stats.entries, 0u);
}

TEST(ResultCache, TinyCapacityKeepsExactLru) {
  svc::ResultCache cache(1);
  EXPECT_EQ(cache.shard_count(), 1u);
  auto a = std::make_shared<const synth::SynthesisResult>();
  auto b = std::make_shared<const synth::SynthesisResult>();
  cache.insert(10, a);
  EXPECT_EQ(cache.lookup(10), a);
  cache.insert(20, b);  // evicts 10
  EXPECT_EQ(cache.lookup(10), nullptr);
  EXPECT_EQ(cache.lookup(20), b);
  EXPECT_EQ(cache.stats().evictions, 1);
}

TEST(BatchService, ReliabilityJobProducesReportAndReusesSynthesisCache) {
  svc::BatchService::Config config;
  config.workers = 2;
  svc::BatchService service(config);

  const auto make_spec = [] {
    svc::JobSpec spec = small_job();
    spec.kind = svc::JobKind::kReliability;
    spec.reliability.monte_carlo.trials = 300;
    spec.reliability.monte_carlo.seed = 42;
    spec.reliability.inject_top = 1;
    return spec;
  };

  const svc::JobResult first = service.submit(make_spec()).get();
  ASSERT_EQ(first.status, svc::JobStatus::kDone);
  ASSERT_NE(first.result, nullptr);
  ASSERT_NE(first.report, nullptr);
  EXPECT_GT(first.report->healthy.mttf_runs, 0.0);
  EXPECT_EQ(first.report->trials, 300);
  ASSERT_EQ(first.report->rounds.size(), 1u);
  EXPECT_FALSE(first.cache_hit);

  // Same job again: the healthy synthesis comes from the cache, the
  // analysis re-runs and reproduces the same report (fixed seed).
  const svc::JobResult second = service.submit(make_spec()).get();
  ASSERT_EQ(second.status, svc::JobStatus::kDone);
  ASSERT_NE(second.report, nullptr);
  EXPECT_TRUE(second.cache_hit);
  EXPECT_EQ(second.report->healthy.mttf_runs, first.report->healthy.mttf_runs);
  EXPECT_EQ(second.report->to_json(), first.report->to_json());

  const svc::MetricsSnapshot metrics = service.metrics();
  EXPECT_EQ(metrics.reliability_jobs, 2);
  EXPECT_EQ(metrics.reliability_latency.count, 2u);
  EXPECT_EQ(metrics.cache.hits, 1);
}

TEST(BatchService, SynthesisJobsCarryNoReport) {
  svc::BatchService service(svc::BatchService::Config{});
  const svc::JobResult result = service.submit(small_job()).get();
  ASSERT_EQ(result.status, svc::JobStatus::kDone);
  EXPECT_EQ(result.report, nullptr);
  EXPECT_EQ(service.metrics().reliability_jobs, 0);
}

}  // namespace
}  // namespace fsyn
