// Property/fuzz tests: random assays through the entire pipeline.
//
// For every randomly generated assay, every stage either succeeds with all
// invariants intact (validated placement, legal routing, reconciled
// simulator) or fails with a clean fsyn::Error — never a crash, never a
// silent inconsistency.
#include <gtest/gtest.h>

#include "assay/concentration.hpp"
#include "assay/parser.hpp"
#include "assay/random_assay.hpp"
#include "sched/list_scheduler.hpp"
#include "sim/control_program.hpp"
#include "sim/simulator.hpp"
#include "synth/synthesis.hpp"
#include "util/rng.hpp"

namespace fsyn {
namespace {

class PipelineFuzz : public ::testing::TestWithParam<int> {};

TEST_P(PipelineFuzz, RandomAssayRunsCleanly) {
  Rng rng(static_cast<std::uint64_t>(GetParam()) * 104729 + 7);
  assay::RandomAssayOptions gen;
  gen.mixing_ops = rng.next_int(3, 14);
  gen.reuse_probability = rng.next_double();
  gen.detect_probability = rng.next_double() * 0.4;
  const assay::SequencingGraph graph = assay::make_random_assay(rng, gen);

  // Structural sanity.
  ASSERT_NO_THROW(graph.validate());
  EXPECT_EQ(graph.mixing_count(), gen.mixing_ops);

  // Concentrations always sum to one.
  const auto mixtures = assay::compute_mixtures(graph);
  for (const auto& mixture : mixtures) {
    assay::Ratio sum = assay::Ratio::zero();
    for (const auto& [fluid, share] : mixture) sum = sum + share;
    EXPECT_EQ(sum, assay::Ratio::one());
  }

  // The DSL round-trips.
  const assay::SequencingGraph reparsed = assay::parse_assay(to_assay_text(graph));
  EXPECT_EQ(reparsed.size(), graph.size());

  // Scheduling under a random policy.
  const int increments = rng.next_int(0, 2);
  const sched::Schedule schedule =
      sched::schedule_with_policy(graph, sched::make_policy(graph, increments));
  ASSERT_NO_THROW(schedule.validate());

  // Full synthesis with a small effort budget.
  synth::SynthesisOptions options;
  options.heuristic.sa_iterations = 1500;
  options.heuristic.seed = rng.next_u64();
  options.chip_sweep = 0;
  synth::SynthesisResult result;
  try {
    result = synth::synthesize(graph, schedule, options);
  } catch (const Error&) {
    return;  // clean refusal (chip growth exhausted) is acceptable
  }

  // Invariants on success.
  EXPECT_GE(result.vs1_max, result.vs1_pump);
  EXPECT_GT(result.valve_count, 0);
  EXPECT_TRUE(result.routing.success);

  auto problem = synth::MappingProblem::build(
      graph, schedule, arch::Architecture(result.chip_width, result.chip_height));
  EXPECT_NO_THROW(problem.validate_placement(result.placement));
  EXPECT_NO_THROW(route::validate_routing(problem, result.placement, result.routing));

  // Simulator audit and control-program round trip.
  sim::ChipSimulator simulator(problem, result.placement, result.routing,
                               sim::Setting::kConservative);
  const sim::ActuationLedger ledger = simulator.verify();
  const sim::ControlProgram program = sim::compile_control_program(
      problem, result.placement, result.routing, sim::Setting::kConservative);
  const Grid<int> replayed = program.replay(result.chip_width, result.chip_height);
  const Grid<int> expected = ledger.total();
  bool equal = true;
  expected.for_each([&](const Point& p, const int& v) {
    if (replayed.at(p) != v) equal = false;
  });
  EXPECT_TRUE(equal) << "control program replay must equal the ledger";
  EXPECT_EQ(program.distinct_valves(), ledger.actuated_valve_count());
}

INSTANTIATE_TEST_SUITE_P(Seeds, PipelineFuzz, ::testing::Range(0, 25));

TEST(RandomAssay, DeterministicPerSeed) {
  Rng a(5), b(5);
  const auto ga = assay::make_random_assay(a);
  const auto gb = assay::make_random_assay(b);
  EXPECT_EQ(to_assay_text(ga), to_assay_text(gb));
}

TEST(RandomAssay, RespectsOptionKnobs) {
  Rng rng(11);
  assay::RandomAssayOptions opts;
  opts.mixing_ops = 20;
  opts.reuse_probability = 0.0;  // every mix uses fresh inputs
  opts.detect_probability = 0.0;
  const auto g = assay::make_random_assay(rng, opts);
  EXPECT_EQ(g.mixing_count(), 20);
  EXPECT_EQ(g.count(assay::OpKind::kInput), 40);
  EXPECT_EQ(g.count(assay::OpKind::kDetect), 0);
  for (const auto& op : g.operations()) {
    if (op.kind != assay::OpKind::kMix) continue;
    for (const auto parent : op.parents) {
      EXPECT_EQ(g.op(parent).kind, assay::OpKind::kInput);
    }
  }
}

}  // namespace
}  // namespace fsyn
