// Tests for scheduling: ASAP (must reproduce the paper's Fig. 9 PCR Gantt),
// policy generation (must reproduce the #m / #d patterns of Table 1) and
// resource-constrained list scheduling invariants.
#include <gtest/gtest.h>

#include "assay/benchmarks.hpp"
#include "sched/gantt.hpp"
#include "sched/list_scheduler.hpp"
#include "util/error.hpp"

namespace fsyn::sched {
namespace {

using assay::OpId;
using assay::OpKind;

int start_of(const Schedule& s, const std::string& name) {
  for (const auto& op : s.graph->operations()) {
    if (op.name == name) return s.start_of(op.id);
  }
  throw Error("missing op " + name);
}
int end_of(const Schedule& s, const std::string& name) {
  for (const auto& op : s.graph->operations()) {
    if (op.name == name) return s.end_of(op.id);
  }
  throw Error("missing op " + name);
}

// Fig. 9: o3/o4 end at 3, o6 runs 6..12, o2 ends at 12, o1 at 15,
// o5 runs 18..22, o7 runs 25..29.
TEST(AsapSchedule, ReproducesFig9ForPcr) {
  const auto g = assay::make_pcr();
  const Schedule s = schedule_asap(g);
  EXPECT_EQ(end_of(s, "o3"), 3);
  EXPECT_EQ(end_of(s, "o4"), 3);
  EXPECT_EQ(start_of(s, "o6"), 6);
  EXPECT_EQ(end_of(s, "o6"), 12);
  EXPECT_EQ(end_of(s, "o2"), 12);
  EXPECT_EQ(end_of(s, "o1"), 15);
  EXPECT_EQ(start_of(s, "o5"), 18);
  EXPECT_EQ(end_of(s, "o5"), 22);
  EXPECT_EQ(start_of(s, "o7"), 25);
  EXPECT_EQ(end_of(s, "o7"), 29);
  EXPECT_EQ(s.makespan(), 29);
}

TEST(AsapSchedule, StorageWindowsMatchFig9) {
  const auto g = assay::make_pcr();
  const Schedule s = schedule_asap(g);
  // s6 collects o3/o4 products from 3+3=6 == o6 start (no storage wait);
  // s5 exists from o2's product arrival (12+3=15) until o5 starts at 18;
  // s7 exists from o5's... o6 ends 12, arrival 15; o5 ends 22, arrival 25.
  const OpId o5 = s.graph->operations()[12].id;  // 8 inputs + o1..o4 -> index 12
  const OpId o7 = s.graph->operations()[14].id;
  EXPECT_EQ(s.graph->op(o5).name, "o5");
  EXPECT_EQ(s.graph->op(o7).name, "o7");
  EXPECT_EQ(s.earliest_product_arrival(o5), 15);
  EXPECT_EQ(s.earliest_product_arrival(o7), 15);
}

TEST(AsapSchedule, ValidatesOnAllBenchmarks) {
  for (const auto& name : assay::benchmark_names()) {
    const auto g = assay::make_benchmark(name);
    const Schedule s = schedule_asap(g);
    EXPECT_NO_THROW(s.validate()) << name;
    EXPECT_GT(s.makespan(), 0) << name;
  }
}

TEST(Policy, BalancedLoad) {
  EXPECT_EQ(Policy::balanced_load(4, 1), 4);
  EXPECT_EQ(Policy::balanced_load(4, 2), 2);
  EXPECT_EQ(Policy::balanced_load(5, 2), 3);
  EXPECT_EQ(Policy::balanced_load(0, 3), 0);
  EXPECT_THROW(Policy::balanced_load(1, 0), LogicError);
}

// Table 1 policy patterns.  PCR p1..p3 use 0..2 increments; Interp p1..p3
// use 1..3; Exponential p1..p3 use 3..5 (see DESIGN.md §3.2).
TEST(Policy, PcrMatchesTable1) {
  const auto g = assay::make_pcr();
  const Policy p1 = make_policy(g, 0);
  EXPECT_EQ(p1.mixers_per_volume, (std::map<int, int>{{4, 1}, {8, 1}, {10, 1}}));
  EXPECT_EQ(p1.device_count(), 3);  // #d = 3, PCR has no detect ops
  const Policy p2 = make_policy(g, 1);
  EXPECT_EQ(p2.mixers_per_volume, (std::map<int, int>{{4, 1}, {8, 2}, {10, 1}}));
  EXPECT_EQ(p2.device_count(), 4);
  const Policy p3 = make_policy(g, 2);
  EXPECT_EQ(p3.mixers_per_volume, (std::map<int, int>{{4, 1}, {8, 3}, {10, 2}}));
  EXPECT_EQ(p3.device_count(), 6);
}

TEST(Policy, MixingTreeMatchesTable1) {
  const auto g = assay::make_mixing_tree();
  EXPECT_EQ(make_policy(g, 0).mixers_per_volume,
            (std::map<int, int>{{4, 1}, {6, 1}, {8, 1}, {10, 1}}));
  EXPECT_EQ(make_policy(g, 1).mixers_per_volume,
            (std::map<int, int>{{4, 1}, {6, 1}, {8, 1}, {10, 2}}));
  EXPECT_EQ(make_policy(g, 2).mixers_per_volume,
            (std::map<int, int>{{4, 1}, {6, 1}, {8, 2}, {10, 2}}));
}

TEST(Policy, InterpolatingDilutionMatchesTable1) {
  const auto g = assay::make_interpolating_dilution();
  EXPECT_EQ(make_policy(g, 1).mixers_per_volume,
            (std::map<int, int>{{4, 1}, {6, 1}, {8, 1}, {10, 2}}));
  EXPECT_EQ(make_policy(g, 2).mixers_per_volume,
            (std::map<int, int>{{4, 1}, {6, 2}, {8, 2}, {10, 2}}));
  EXPECT_EQ(make_policy(g, 3).mixers_per_volume,
            (std::map<int, int>{{4, 1}, {6, 2}, {8, 2}, {10, 3}}));
}

TEST(Policy, ExponentialDilutionMatchesTable1) {
  const auto g = assay::make_exponential_dilution();
  EXPECT_EQ(make_policy(g, 3).mixers_per_volume,
            (std::map<int, int>{{4, 1}, {6, 2}, {8, 2}, {10, 2}}));
  EXPECT_EQ(make_policy(g, 4).mixers_per_volume,
            (std::map<int, int>{{4, 1}, {6, 3}, {8, 2}, {10, 2}}));
  EXPECT_EQ(make_policy(g, 5).mixers_per_volume,
            (std::map<int, int>{{4, 1}, {6, 3}, {8, 3}, {10, 2}}));
}

TEST(Policy, FormatBindingMatchesPaperNotation) {
  const auto g = assay::make_pcr();
  const std::map<int, int> ops{{4, 1}, {8, 4}, {10, 2}};
  const std::vector<int> volumes{4, 6, 8, 10};
  EXPECT_EQ(make_policy(g, 0).format_binding(ops, volumes), "1-0-4-2");
  EXPECT_EQ(make_policy(g, 1).format_binding(ops, volumes), "1-0-(2,2)-2");
  EXPECT_EQ(make_policy(g, 2).format_binding(ops, volumes), "1-0-(2,1,1)-(1,1)");
}

TEST(ListScheduler, RespectsResourceLimits) {
  const auto g = assay::make_pcr();
  const Policy p1 = make_policy(g, 0);  // single size-8 mixer
  const Schedule s = schedule_with_policy(g, p1);
  s.validate();
  // o1..o4 all need the one size-8 mixer: no two of them may overlap.
  std::vector<std::pair<int, int>> intervals;
  for (const auto& op : g.operations()) {
    if (op.kind == OpKind::kMix && op.volume == 8) {
      intervals.push_back({s.start_of(op.id), s.end_of(op.id)});
    }
  }
  ASSERT_EQ(intervals.size(), 4u);
  for (std::size_t i = 0; i < intervals.size(); ++i) {
    for (std::size_t j = i + 1; j < intervals.size(); ++j) {
      const bool disjoint = intervals[i].second <= intervals[j].first ||
                            intervals[j].second <= intervals[i].first;
      EXPECT_TRUE(disjoint) << "size-8 ops overlap on the single mixer";
    }
  }
}

TEST(ListScheduler, MorePolicyMixersNeverSlower) {
  for (const auto& name : assay::benchmark_names()) {
    const auto g = assay::make_benchmark(name);
    int previous = std::numeric_limits<int>::max();
    for (int increments = 0; increments < 4; ++increments) {
      const Schedule s = schedule_with_policy(g, make_policy(g, increments));
      s.validate();
      EXPECT_LE(s.makespan(), previous) << name << " increments=" << increments;
      previous = s.makespan();
    }
  }
}

TEST(ListScheduler, PolicyWithoutRequiredMixerThrows) {
  const auto g = assay::make_pcr();
  Policy broken;
  broken.mixers_per_volume = {{4, 1}};  // missing volumes 8 and 10
  EXPECT_THROW(schedule_with_policy(g, broken), Error);
}

TEST(Gantt, RendersBarsForPcr) {
  const auto g = assay::make_pcr();
  const Schedule s = schedule_asap(g);
  const std::string chart = render_gantt(s);
  // One row per mix op, bars proportional to duration.
  EXPECT_NE(chart.find("o1"), std::string::npos);
  EXPECT_NE(chart.find("o7"), std::string::npos);
  EXPECT_NE(chart.find("==="), std::string::npos);
  EXPECT_NE(chart.find("..."), std::string::npos);  // storage window (s5/s7)
  EXPECT_NE(chart.find("tu"), std::string::npos);
}

}  // namespace
}  // namespace fsyn::sched
