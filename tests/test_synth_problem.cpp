// Tests for the mapping-problem semantics: task timelines, pair
// feasibility (non-overlap, storage overlap, routing convenience), the
// free-space rule, load accounting in both settings, and candidate
// enumeration.
#include <gtest/gtest.h>

#include "assay/benchmarks.hpp"
#include "sched/list_scheduler.hpp"
#include "synth/mapping_problem.hpp"
#include "util/error.hpp"

namespace fsyn::synth {
namespace {

using arch::DeviceInstance;
using arch::DeviceType;
using assay::OpId;
using assay::OpKind;
using assay::Operation;
using assay::SequencingGraph;

Operation input_op(const std::string& name) {
  Operation op;
  op.kind = OpKind::kInput;
  op.name = name;
  return op;
}

Operation mix_op(const std::string& name, std::vector<OpId> parents, int volume,
                 int duration, std::vector<int> ratio = {}) {
  Operation op;
  op.kind = OpKind::kMix;
  op.name = name;
  op.parents = std::move(parents);
  op.volume = volume;
  op.duration = duration;
  op.ratio = std::move(ratio);
  return op;
}

/// Two leaf mixes feeding a third (the smallest interesting problem).
struct Fixture {
  SequencingGraph graph{"fixture"};
  OpId a, b, c;

  Fixture() {
    const OpId i1 = graph.add_operation(input_op("i1"));
    const OpId i2 = graph.add_operation(input_op("i2"));
    const OpId i3 = graph.add_operation(input_op("i3"));
    const OpId i4 = graph.add_operation(input_op("i4"));
    a = graph.add_operation(mix_op("a", {i1, i2}, 8, 6));
    b = graph.add_operation(mix_op("b", {i3, i4}, 8, 9));
    c = graph.add_operation(mix_op("c", {a, b}, 8, 5));
    graph.validate();
  }
};

TEST(MappingProblem, TaskTimeline) {
  Fixture fx;
  const auto schedule = sched::schedule_asap(fx.graph);
  auto problem = MappingProblem::build(fx.graph, schedule, arch::Architecture(10, 10));
  ASSERT_EQ(problem.task_count(), 3);

  const MappingTask& ta = problem.task(problem.task_of(fx.a));
  const MappingTask& tc = problem.task(problem.task_of(fx.c));
  // a: starts at 0, ends 6, product leaves by 9.
  EXPECT_EQ(ta.start, 0);
  EXPECT_EQ(ta.release, 9);
  EXPECT_FALSE(ta.has_storage_phase());  // inputs need no storage
  // c: a's product arrives at 9, b ends at 9, so c starts at 12 and its
  // storage window is [9, 12).
  EXPECT_EQ(tc.storage_from, 9);
  EXPECT_EQ(tc.start, 12);
  EXPECT_TRUE(tc.has_storage_phase());
  EXPECT_EQ(tc.occupancy_begin(), 9);
}

TEST(MappingProblem, ParentChildAndCoParents) {
  Fixture fx;
  const auto schedule = sched::schedule_asap(fx.graph);
  auto problem = MappingProblem::build(fx.graph, schedule, arch::Architecture(10, 10));
  const int ia = problem.task_of(fx.a), ib = problem.task_of(fx.b), ic = problem.task_of(fx.c);
  EXPECT_TRUE(problem.parent_child(ia, ic));
  EXPECT_TRUE(problem.parent_child(ic, ib));
  EXPECT_FALSE(problem.parent_child(ia, ib));
  EXPECT_TRUE(problem.co_parents(ia, ib));
  EXPECT_FALSE(problem.co_parents(ia, ic));
}

TEST(MappingProblem, ConcurrentUnrelatedTasksNeedAWallGap) {
  Fixture fx;
  const auto schedule = sched::schedule_asap(fx.graph);
  auto problem = MappingProblem::build(fx.graph, schedule, arch::Architecture(12, 12));
  const int ia = problem.task_of(fx.a), ib = problem.task_of(fx.b);
  const DeviceInstance da{DeviceType{2, 4}, Point{0, 0}};
  EXPECT_FALSE(problem.pair_feasible(ia, da, ib, DeviceInstance{DeviceType{2, 4}, Point{1, 0}}));
  EXPECT_FALSE(problem.pair_feasible(ia, da, ib, DeviceInstance{DeviceType{2, 4}, Point{2, 0}}));
  EXPECT_TRUE(problem.pair_feasible(ia, da, ib, DeviceInstance{DeviceType{2, 4}, Point{3, 0}}));
}

TEST(MappingProblem, RoutingConvenienceBoundsParentChildDistance) {
  Fixture fx;
  const auto schedule = sched::schedule_asap(fx.graph);
  auto problem = MappingProblem::build(fx.graph, schedule, arch::Architecture(14, 14));
  const int ia = problem.task_of(fx.a), ic = problem.task_of(fx.c);
  EXPECT_EQ(problem.routing_distance(), 2);
  const DeviceInstance da{DeviceType{2, 4}, Point{0, 0}};
  // gap 2 is allowed, gap 3 is not (d = 2).
  EXPECT_TRUE(problem.pair_feasible(ia, da, ic, DeviceInstance{DeviceType{2, 4}, Point{4, 0}}));
  EXPECT_FALSE(problem.pair_feasible(ia, da, ic, DeviceInstance{DeviceType{2, 4}, Point{5, 0}}));
  // Disabling routing convenience lifts the bound.
  problem.set_routing_convenient(false);
  EXPECT_TRUE(problem.pair_feasible(ia, da, ic, DeviceInstance{DeviceType{2, 4}, Point{9, 0}}));
}

TEST(MappingProblem, StorageMayOverlapParentWithinFreeSpace) {
  Fixture fx;
  const auto schedule = sched::schedule_asap(fx.graph);
  auto problem = MappingProblem::build(fx.graph, schedule, arch::Architecture(12, 12));
  const int ib = problem.task_of(fx.b), ic = problem.task_of(fx.c);

  // c's storage opens at 9 with a's product inside (4 of 8 cells, equal
  // parts).  While b is live (release 12 > 9), overlapping c's ring by up
  // to 4 cells is legal.
  EXPECT_EQ(problem.storage_occupied_before(ic, problem.task(ib).release), 4);

  const DeviceInstance db{DeviceType{2, 4}, Point{0, 0}};
  // c fully on top of b: ring overlap = 8 cells > 4 free.
  const DeviceInstance dc_heavy{DeviceType{2, 4}, Point{0, 0}};
  EXPECT_FALSE(problem.storage_overlap_fits(ib, db, ic, dc_heavy));
  EXPECT_FALSE(problem.pair_feasible(ib, db, ic, dc_heavy));
  // c as 4x2 overlapping only b's 2x2 lower corner: 4 cells <= 4 free.
  const DeviceInstance dc_light{DeviceType{4, 2}, Point{0, 0}};
  EXPECT_TRUE(problem.storage_overlap_fits(ib, db, ic, dc_light));
  EXPECT_TRUE(problem.pair_feasible(ib, db, ic, dc_light));
}

TEST(MappingProblem, ForbiddingStorageOverlapTurnsPairStrict) {
  Fixture fx;
  const auto schedule = sched::schedule_asap(fx.graph);
  auto problem = MappingProblem::build(fx.graph, schedule, arch::Architecture(12, 12));
  const int ib = problem.task_of(fx.b), ic = problem.task_of(fx.c);
  const DeviceInstance db{DeviceType{2, 4}, Point{0, 0}};
  const DeviceInstance dc{DeviceType{4, 2}, Point{0, 0}};
  ASSERT_TRUE(problem.pair_feasible(ib, db, ic, dc));
  problem.forbid_storage_overlap(ib, ic);
  EXPECT_TRUE(problem.storage_overlap_forbidden(ic, ib));  // order-insensitive
  EXPECT_FALSE(problem.pair_feasible(ib, db, ic, dc));
  // Globally disabling the relaxation has the same effect.
  auto strict = MappingProblem::build(fx.graph, schedule, arch::Architecture(12, 12));
  strict.set_allow_storage_overlap(false);
  EXPECT_FALSE(strict.pair_feasible(ib, db, ic, dc));
}

TEST(MappingProblem, RatioWeightsStorageOccupancy) {
  // A 1:3 mix: the early parent contributes only 1/4 of the volume.
  SequencingGraph g("ratio");
  const OpId i1 = g.add_operation(input_op("i1"));
  const OpId i2 = g.add_operation(input_op("i2"));
  const OpId i3 = g.add_operation(input_op("i3"));
  const OpId i4 = g.add_operation(input_op("i4"));
  const OpId a = g.add_operation(mix_op("a", {i1, i2}, 8, 3));
  const OpId b = g.add_operation(mix_op("b", {i3, i4}, 8, 9));
  g.add_operation(mix_op("c", {a, b}, 8, 5, {1, 3}));
  g.validate();
  const auto schedule = sched::schedule_asap(g);
  auto problem = MappingProblem::build(g, schedule, arch::Architecture(12, 12));
  const int ib = problem.task_of(b);
  const int ic = problem.task_of(g.op(OpId{6}).id);
  // a contributes ceil(8 * 1/4) = 2 cells; 6 cells remain free while b runs.
  EXPECT_EQ(problem.storage_occupied_before(ic, problem.task(ib).release), 2);
}

TEST(MappingProblem, TimeDisjointTasksShareAreaFreely) {
  // Sequential chain long enough that a and c's grandchild never coexist…
  // simpler: two mixes scheduled far apart via a long middle op.
  SequencingGraph g("disjoint");
  const OpId i1 = g.add_operation(input_op("i1"));
  const OpId i2 = g.add_operation(input_op("i2"));
  const OpId a = g.add_operation(mix_op("a", {i1, i2}, 8, 4));
  const OpId b = g.add_operation(mix_op("b", {a}, 8, 4));
  const OpId c = g.add_operation(mix_op("c", {b}, 8, 4));
  g.validate();
  const auto schedule = sched::schedule_asap(g);
  auto problem = MappingProblem::build(g, schedule, arch::Architecture(10, 10));
  const int ia = problem.task_of(a), ic = problem.task_of(c);
  ASSERT_FALSE(problem.time_overlap(ia, ic));
  // Identical footprints are fine for time-disjoint unrelated tasks.
  const DeviceInstance d{DeviceType{2, 4}, Point{0, 0}};
  EXPECT_TRUE(problem.pair_feasible(ia, d, ic, d));
}

TEST(MappingProblem, PumpLoadsBothSettings) {
  Fixture fx;
  const auto schedule = sched::schedule_asap(fx.graph);
  auto problem = MappingProblem::build(fx.graph, schedule, arch::Architecture(12, 12));
  Placement placement(3, DeviceInstance{DeviceType{2, 4}, Point{0, 0}});
  placement[static_cast<std::size_t>(problem.task_of(fx.a))] = {DeviceType{2, 4}, Point{0, 0}};
  placement[static_cast<std::size_t>(problem.task_of(fx.b))] = {DeviceType{2, 4}, Point{3, 0}};
  placement[static_cast<std::size_t>(problem.task_of(fx.c))] = {DeviceType{2, 4}, Point{0, 4}};
  problem.validate_placement(placement);

  // Setting 1: all rings disjoint -> max 40; conservation: 3 ops x 8 x 40.
  EXPECT_EQ(problem.max_pump_load(placement), kPumpActuationsPerMix);
  const auto loads = problem.pump_loads(placement);
  long sum = 0;
  for (const int v : loads) sum += v;
  EXPECT_EQ(sum, 3L * 8 * kPumpActuationsPerMix);

  // Setting 2: per-valve work is ceil(120/8) = 15.
  EXPECT_EQ(problem.max_pump_load_setting2(placement), 15);
}

TEST(MappingProblem, ValidatePlacementRejectsViolations) {
  Fixture fx;
  const auto schedule = sched::schedule_asap(fx.graph);
  auto problem = MappingProblem::build(fx.graph, schedule, arch::Architecture(12, 12));
  Placement bad(3, DeviceInstance{DeviceType{2, 4}, Point{0, 0}});
  // a and b concurrent at the same location.
  EXPECT_THROW(problem.validate_placement(bad), LogicError);
  // Wrong size vector.
  EXPECT_THROW(problem.validate_placement(Placement{}), LogicError);
  // Off-chip placement.
  Placement off(3, DeviceInstance{DeviceType{2, 4}, Point{0, 0}});
  off[1] = {DeviceType{2, 4}, Point{11, 11}};
  EXPECT_THROW(problem.validate_placement(off), LogicError);
}

TEST(MappingProblem, CandidatesExcludePortCells) {
  Fixture fx;
  const auto schedule = sched::schedule_asap(fx.graph);
  auto problem = MappingProblem::build(fx.graph, schedule, arch::Architecture(10, 10));
  for (int i = 0; i < problem.task_count(); ++i) {
    const auto candidates = problem.candidates_for(i);
    EXPECT_FALSE(candidates.empty());
    for (const DeviceInstance& c : candidates) {
      for (const arch::ChipPort& port : problem.chip().ports()) {
        EXPECT_FALSE(c.footprint().contains(port.cell))
            << "candidate covers port " << port.name;
      }
    }
  }
}

TEST(MappingProblem, DetectTasksHaveNoPumpActuations) {
  const auto g = assay::make_interpolating_dilution();
  const auto schedule = sched::schedule_asap(g);
  auto problem = MappingProblem::build(g, schedule, arch::Architecture(20, 20));
  int detect_tasks = 0;
  for (const MappingTask& task : problem.tasks()) {
    if (!task.is_mix) {
      ++detect_tasks;
      EXPECT_EQ(task.pump_actuations, 0);
      EXPECT_EQ(task.volume, 4);
    } else {
      EXPECT_EQ(task.pump_actuations, kPumpActuationsPerMix);
    }
  }
  EXPECT_EQ(detect_tasks, 4);
}

}  // namespace
}  // namespace fsyn::synth
