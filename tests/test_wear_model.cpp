// Tests for sim/wear_model: Monte-Carlo determinism in the seed, percentile
// sanity, and consistency between the deterministic and sampled estimates.
#include <gtest/gtest.h>

#include "sim/wear_model.hpp"

namespace fsyn::sim {
namespace {

/// A small hand-built ledger: a 4x4 chip with a hot pump ring and a couple
/// of control-only valves.
ActuationLedger make_ledger() {
  ActuationLedger ledger;
  ledger.pump = Grid<int>(4, 4, 0);
  ledger.control = Grid<int>(4, 4, 0);
  ledger.pump.at({1, 1}) = 40;
  ledger.pump.at({2, 1}) = 40;
  ledger.pump.at({1, 2}) = 44;  // busiest valve: 44 + 2 = 46 per run
  ledger.control.at({1, 2}) = 2;
  ledger.control.at({0, 0}) = 6;
  ledger.control.at({3, 3}) = 2;
  return ledger;
}

TEST(WearModel, DeterministicLifetimeIsEnduranceOverBusiestValve) {
  const ActuationLedger ledger = make_ledger();
  WearModel model;
  model.endurance_mean = 5000.0;
  EXPECT_EQ(ledger.max_total(), 46);
  EXPECT_EQ(deterministic_lifetime(ledger, model), 5000 / 46);
}

TEST(WearModel, MonteCarloIsDeterministicInTheSeed) {
  const ActuationLedger ledger = make_ledger();
  const WearModel model;

  Rng rng_a(12345);
  const LifetimeEstimate a = monte_carlo_lifetime(ledger, rng_a, model, 500);
  Rng rng_b(12345);
  const LifetimeEstimate b = monte_carlo_lifetime(ledger, rng_b, model, 500);

  // Same seed => bit-identical estimate.
  EXPECT_EQ(a.mean_runs, b.mean_runs);
  EXPECT_EQ(a.p10_runs, b.p10_runs);
  EXPECT_EQ(a.p90_runs, b.p90_runs);
  EXPECT_EQ(a.trials, b.trials);

  // A different seed samples different chips (means almost surely differ).
  Rng rng_c(54321);
  const LifetimeEstimate c = monte_carlo_lifetime(ledger, rng_c, model, 500);
  EXPECT_NE(a.mean_runs, c.mean_runs);
}

TEST(WearModel, PercentilesBracketTheMean) {
  const ActuationLedger ledger = make_ledger();
  Rng rng(2015);
  const LifetimeEstimate estimate = monte_carlo_lifetime(ledger, rng, {}, 2000);

  EXPECT_GT(estimate.p10_runs, 0.0);
  EXPECT_LE(estimate.p10_runs, estimate.mean_runs);
  EXPECT_LE(estimate.mean_runs, estimate.p90_runs);
  EXPECT_EQ(estimate.trials, 2000);
}

TEST(WearModel, DeterministicLifetimeLiesInTheMonteCarloEnvelope) {
  const ActuationLedger ledger = make_ledger();
  const WearModel model;  // stddev 500 around mean 5000
  Rng rng(7);
  const LifetimeEstimate estimate = monte_carlo_lifetime(ledger, rng, model, 2000);
  const double deterministic = deterministic_lifetime(ledger, model);

  // With 10% endurance spread the sampled envelope must contain the
  // deterministic estimate: p10 pessimistic, p90 optimistic.
  EXPECT_LE(estimate.p10_runs, deterministic);
  EXPECT_GE(estimate.p90_runs, deterministic);
}

TEST(ValveWearApi, SplitsRolesWithStableRowMajorIds) {
  const ActuationLedger ledger = make_ledger();
  const std::vector<ValveWear> valves = valve_wear(ledger);

  // Only actuated cells appear, in ascending row-major id order.
  ASSERT_EQ(valves.size(), 5u);
  EXPECT_EQ(valves[0].valve_id, 0);   // (0,0)
  EXPECT_EQ(valves[1].valve_id, 5);   // (1,1)
  EXPECT_EQ(valves[2].valve_id, 6);   // (2,1)
  EXPECT_EQ(valves[3].valve_id, 9);   // (1,2)
  EXPECT_EQ(valves[4].valve_id, 15);  // (3,3)
  for (const ValveWear& valve : valves) {
    EXPECT_EQ(valve.valve_id, valve.cell.y * ledger.pump.width() + valve.cell.x);
  }

  // Role split: any peristaltic duty makes the valve a pump valve.
  EXPECT_EQ(valves[0].role(), ValveRole::kControl);
  EXPECT_EQ(valves[0].control, 6);
  EXPECT_EQ(valves[1].role(), ValveRole::kPump);
  EXPECT_EQ(valves[3].role(), ValveRole::kPump);  // 44 pump + 2 control
  EXPECT_EQ(valves[3].pump, 44);
  EXPECT_EQ(valves[3].control, 2);
  EXPECT_EQ(valves[3].total(), 46);
  EXPECT_STREQ(to_string(ValveRole::kPump), "pump");
  EXPECT_STREQ(to_string(ValveRole::kControl), "control");
}

TEST(WearModel, ZeroVarianceCollapsesToDeterministic) {
  const ActuationLedger ledger = make_ledger();
  WearModel model;
  model.endurance_stddev = 0.0;
  Rng rng(1);
  const LifetimeEstimate estimate = monte_carlo_lifetime(ledger, rng, model, 100);
  const double deterministic = deterministic_lifetime(ledger, model);
  EXPECT_EQ(estimate.mean_runs, deterministic);
  EXPECT_EQ(estimate.p10_runs, deterministic);
  EXPECT_EQ(estimate.p90_runs, deterministic);
}

}  // namespace
}  // namespace fsyn::sim
