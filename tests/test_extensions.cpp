// Tests for the extension modules: valve wear / lifetime estimation,
// contamination wash planning, and JSON export.
#include <gtest/gtest.h>

#include <memory>
#include <set>

#include "assay/benchmarks.hpp"
#include "assay/parser.hpp"
#include "report/json_export.hpp"
#include "route/contamination.hpp"
#include "sched/list_scheduler.hpp"
#include "sim/wear_model.hpp"
#include "synth/synthesis.hpp"

namespace fsyn {
namespace {

struct Synthesized {
  assay::SequencingGraph graph{"empty"};
  sched::Schedule schedule;
  synth::MappingProblem problem;
  synth::SynthesisResult result;
};

std::unique_ptr<Synthesized> synthesize_pcr() {
  auto out = std::make_unique<Synthesized>();
  out->graph = assay::make_pcr();
  out->schedule = sched::schedule_asap(out->graph);
  out->result = synth::synthesize(out->graph, out->schedule);
  out->problem = synth::MappingProblem::build(
      out->graph, out->schedule,
      arch::Architecture(out->result.chip_width, out->result.chip_height));
  return out;
}

// ------------------------------------------------------------- wear model

TEST(WearModel, DeterministicLifetimeIsEnduranceOverMax) {
  const auto s = synthesize_pcr();
  sim::WearModel model;
  model.endurance_mean = 5000.0;
  const int runs = sim::deterministic_lifetime(s->result.ledger_setting1, model);
  EXPECT_EQ(runs, 5000 / s->result.vs1_max);
}

TEST(WearModel, MonteCarloBracketsDeterministic) {
  const auto s = synthesize_pcr();
  Rng rng(77);
  const sim::LifetimeEstimate estimate =
      sim::monte_carlo_lifetime(s->result.ledger_setting1, rng);
  const int deterministic = sim::deterministic_lifetime(s->result.ledger_setting1);
  EXPECT_GT(estimate.mean_runs, 0.0);
  EXPECT_LE(estimate.p10_runs, estimate.mean_runs);
  EXPECT_LE(estimate.mean_runs, estimate.p90_runs);
  // Variability and min-over-valves pull the MC mean below the
  // deterministic value, but not absurdly so.
  EXPECT_LT(estimate.mean_runs, deterministic * 1.2);
  EXPECT_GT(estimate.mean_runs, deterministic * 0.4);
}

TEST(WearModel, LowerMaxActuationsNeverShortensLifetime) {
  const auto s = synthesize_pcr();
  // Setting 2 has strictly lower per-valve loads than setting 1.
  Rng rng1(5), rng2(5);
  const auto life1 = sim::monte_carlo_lifetime(s->result.ledger_setting1, rng1);
  const auto life2 = sim::monte_carlo_lifetime(s->result.ledger_setting2, rng2);
  EXPECT_GE(life2.mean_runs, life1.mean_runs);
}

TEST(WearModel, ZeroVarianceMatchesDeterministic) {
  const auto s = synthesize_pcr();
  sim::WearModel model;
  model.endurance_stddev = 0.0;
  Rng rng(1);
  const auto estimate = sim::monte_carlo_lifetime(s->result.ledger_setting1, rng, model, 50);
  EXPECT_DOUBLE_EQ(estimate.mean_runs,
                   static_cast<double>(sim::deterministic_lifetime(s->result.ledger_setting1, model)));
}

TEST(WearModel, RejectsBadInput) {
  const auto s = synthesize_pcr();
  Rng rng(1);
  sim::WearModel bad;
  bad.endurance_mean = -1.0;
  EXPECT_THROW(sim::deterministic_lifetime(s->result.ledger_setting1, bad), Error);
  EXPECT_THROW(sim::monte_carlo_lifetime(s->result.ledger_setting1, rng, {}, 0), Error);
}

// ---------------------------------------------------------- contamination

TEST(Contamination, FluidIdsDistinguishProductsAndInputs) {
  const auto s = synthesize_pcr();
  std::set<std::string> fluids;
  for (const auto& path : s->result.routing.paths) {
    fluids.insert(route::path_fluid(s->problem, path));
  }
  // 8 reagents + 6 transferred products + 1 drained product (o7 transfers
  // none, o5/o6 etc. do) => at least 10 distinct fluids.
  EXPECT_GE(fluids.size(), 10u);
}

TEST(Contamination, WashPlanOnlyOnSharedCellsWithDifferentFluids) {
  const auto s = synthesize_pcr();
  const route::WashPlan plan = route::plan_washes(s->problem, s->result.routing);
  for (const route::Wash& wash : plan.washes) {
    EXPECT_NE(wash.incoming_fluid, wash.residue_fluid);
    EXPECT_FALSE(wash.cells.empty());
    ASSERT_GE(wash.before_path, 0);
    // Every washed cell really lies on the contaminated path.
    const auto& path = s->result.routing.paths[static_cast<std::size_t>(wash.before_path)];
    for (const Point& cell : wash.cells) {
      EXPECT_NE(std::find(path.cells.begin(), path.cells.end(), cell), path.cells.end());
    }
  }
}

TEST(Contamination, DisjointPathsNeedNoWash) {
  // A single mix has two fills from different ports and one drain; if the
  // router keeps them disjoint, no washes are needed; if they share cells,
  // each shared cell appears in the plan.  Verify consistency either way.
  auto out = std::make_unique<Synthesized>();
  out->graph = assay::parse_assay(R"(
assay tiny
input i1
input i2
mix a volume 8 duration 6 from i1 i2
)");
  out->schedule = sched::schedule_asap(out->graph);
  out->result = synth::synthesize(out->graph, out->schedule);
  out->problem = synth::MappingProblem::build(
      out->graph, out->schedule,
      arch::Architecture(out->result.chip_width, out->result.chip_height));
  const route::WashPlan plan = route::plan_washes(out->problem, out->result.routing);
  int shared_cells_with_fluid_change = 0;
  const auto& paths = out->result.routing.paths;
  for (std::size_t i = 0; i < paths.size(); ++i) {
    for (std::size_t j = i + 1; j < paths.size(); ++j) {
      if (route::path_fluid(out->problem, paths[i]) ==
          route::path_fluid(out->problem, paths[j])) {
        continue;
      }
      for (const Point& cell : paths[i].cells) {
        shared_cells_with_fluid_change +=
            std::count(paths[j].cells.begin(), paths[j].cells.end(), cell);
      }
    }
  }
  EXPECT_EQ(plan.total_washed_cells, shared_cells_with_fluid_change);
}

TEST(Contamination, ExtraControlGridMatchesPlan) {
  const auto s = synthesize_pcr();
  const route::WashPlan plan = route::plan_washes(s->problem, s->result.routing);
  const Grid<int> extra = plan.extra_control(s->result.chip_width, s->result.chip_height);
  long sum = 0;
  for (const int v : extra) sum += v;
  EXPECT_EQ(sum, 2L * plan.total_washed_cells);
}

// ------------------------------------------------------------ JSON export

TEST(JsonExport, EscapesSpecialCharacters) {
  EXPECT_EQ(report::json_escape("plain"), "plain");
  EXPECT_EQ(report::json_escape("a\"b"), "a\\\"b");
  EXPECT_EQ(report::json_escape("a\\b"), "a\\\\b");
  EXPECT_EQ(report::json_escape("a\nb"), "a\\nb");
  EXPECT_EQ(report::json_escape(std::string("a\x01") + "b"), "a\\u0001b");
}

TEST(JsonExport, DocumentContainsAllSections) {
  const auto s = synthesize_pcr();
  const std::string json = report::to_json(s->problem, s->result);
  for (const char* key : {"\"assay\"", "\"chip\"", "\"ports\"", "\"devices\"", "\"paths\"",
                          "\"actuations_setting1\"", "\"actuations_setting2\"", "\"metrics\"",
                          "\"vs1_max\"", "\"valve_count\""}) {
    EXPECT_NE(json.find(key), std::string::npos) << key;
  }
  // Structural sanity: balanced braces and brackets.
  long braces = 0, brackets = 0;
  for (const char c : json) {
    braces += c == '{';
    braces -= c == '}';
    brackets += c == '[';
    brackets -= c == ']';
  }
  EXPECT_EQ(braces, 0);
  EXPECT_EQ(brackets, 0);
  // One device entry per task.
  std::size_t ops = 0;
  for (std::size_t pos = json.find("\"op\""); pos != std::string::npos;
       pos = json.find("\"op\"", pos + 1)) {
    ++ops;
  }
  EXPECT_EQ(ops, static_cast<std::size_t>(s->problem.task_count()));
}

TEST(JsonExport, WriteFileAndDimensionMismatch) {
  const auto s = synthesize_pcr();
  const std::string path = ::testing::TempDir() + "/chip.json";
  EXPECT_NO_THROW(report::write_json(path, s->problem, s->result));
  // Mismatched problem must be rejected.
  auto other = synth::MappingProblem::build(s->graph, s->schedule, arch::Architecture(30, 30));
  EXPECT_THROW(report::to_json(other, s->result), LogicError);
}

}  // namespace
}  // namespace fsyn
