// Tests for control-program compilation, replay equivalence, pin sharing
// and the SVG export.
#include <gtest/gtest.h>

#include <fstream>
#include <memory>

#include "assay/benchmarks.hpp"
#include "report/svg_export.hpp"
#include "route/router.hpp"
#include "sched/list_scheduler.hpp"
#include "sim/control_program.hpp"
#include "synth/heuristic_mapper.hpp"

namespace fsyn::sim {
namespace {

struct Fixture {
  assay::SequencingGraph graph{"empty"};
  sched::Schedule schedule;
  synth::MappingProblem problem;
  synth::Placement placement;
  route::RoutingResult routing;
};

std::unique_ptr<Fixture> make_fixture() {
  auto out = std::make_unique<Fixture>();
  out->graph = assay::make_pcr();
  out->schedule = sched::schedule_asap(out->graph);
  out->problem =
      synth::MappingProblem::build(out->graph, out->schedule, arch::Architecture(11, 11));
  const auto mapping = synth::map_heuristic(out->problem);
  if (!mapping.has_value()) throw Error("fixture mapping failed");
  out->placement = mapping->placement;
  out->routing = route::route_all(out->problem, out->placement);
  if (!out->routing.success) throw Error("fixture routing failed");
  return out;
}

TEST(ControlProgram, ReplayEqualsLedgerBothSettings) {
  const auto fx = make_fixture();
  for (const Setting setting : {Setting::kConservative, Setting::kRescaled}) {
    const ActuationLedger ledger = account(fx->problem, fx->placement, fx->routing, setting);
    const ControlProgram program =
        compile_control_program(fx->problem, fx->placement, fx->routing, setting);
    const Grid<int> replayed = program.replay(11, 11);
    const Grid<int> expected = ledger.total();
    expected.for_each([&](const Point& p, const int& v) {
      EXPECT_EQ(replayed.at(p), v) << "at " << p;
    });
    EXPECT_EQ(program.distinct_valves(), ledger.actuated_valve_count());
  }
}

TEST(ControlProgram, EventsAreChronological) {
  const auto fx = make_fixture();
  const ControlProgram program =
      compile_control_program(fx->problem, fx->placement, fx->routing);
  ASSERT_FALSE(program.events.empty());
  for (std::size_t i = 1; i < program.events.size(); ++i) {
    EXPECT_LE(program.events[i - 1].time, program.events[i].time);
  }
}

TEST(ControlProgram, PumpBurstsOnlyOnMixRings) {
  const auto fx = make_fixture();
  const ControlProgram program =
      compile_control_program(fx->problem, fx->placement, fx->routing);
  int bursts = 0;
  for (const ValveEvent& event : program.events) {
    if (event.action != ValveAction::kPumpBurst) continue;
    ++bursts;
    EXPECT_EQ(event.count, 40);
    // Every burst's valve must lie on the ring of the named operation.
    bool on_some_ring = false;
    for (int i = 0; i < fx->problem.task_count(); ++i) {
      if (fx->problem.task(i).name != event.cause) continue;
      const auto ring = fx->placement[static_cast<std::size_t>(i)].pump_cells();
      on_some_ring = std::find(ring.begin(), ring.end(), event.valve) != ring.end();
    }
    EXPECT_TRUE(on_some_ring) << event.cause;
  }
  // 7 mixes with rings of 8/8/8/8/10/10/4 valves = 56 burst events.
  EXPECT_EQ(bursts, 56);
}

TEST(ControlProgram, TextListingMentionsOperations) {
  const auto fx = make_fixture();
  const ControlProgram program =
      compile_control_program(fx->problem, fx->placement, fx->routing);
  const std::string text = program.to_text();
  EXPECT_NE(text.find("pump x40"), std::string::npos);
  EXPECT_NE(text.find("cycle x2"), std::string::npos);
  EXPECT_NE(text.find("o7"), std::string::npos);
}

TEST(ControlProgram, PinSharingNeverExceedsValveCount) {
  const auto fx = make_fixture();
  const ControlProgram program =
      compile_control_program(fx->problem, fx->placement, fx->routing);
  const int pins = shared_control_pins(program);
  EXPECT_GT(pins, 0);
  EXPECT_LE(pins, program.distinct_valves());
}

TEST(SvgExport, ContainsDevicesPathsAndPorts) {
  const auto fx = make_fixture();
  const ActuationLedger ledger =
      account(fx->problem, fx->placement, fx->routing, Setting::kConservative);
  const std::string svg =
      report::render_chip_svg(fx->problem, fx->placement, fx->routing, ledger);
  EXPECT_NE(svg.find("<svg"), std::string::npos);
  EXPECT_NE(svg.find("</svg>"), std::string::npos);
  EXPECT_NE(svg.find("polyline"), std::string::npos);   // routed paths
  EXPECT_NE(svg.find("o1"), std::string::npos);         // device label
  EXPECT_NE(svg.find("out"), std::string::npos);        // port label
  // One outline rect per task plus one background + heatmap cells.
  std::size_t rects = 0;
  for (std::size_t pos = svg.find("<rect"); pos != std::string::npos;
       pos = svg.find("<rect", pos + 1)) {
    ++rects;
  }
  EXPECT_GE(rects, static_cast<std::size_t>(fx->problem.task_count()) + 1);
}

TEST(SvgExport, WriteFileRoundTrips) {
  const auto fx = make_fixture();
  const ActuationLedger ledger =
      account(fx->problem, fx->placement, fx->routing, Setting::kConservative);
  const std::string path = ::testing::TempDir() + "/chip.svg";
  report::write_chip_svg(path, fx->problem, fx->placement, fx->routing, ledger);
  std::ifstream file(path);
  ASSERT_TRUE(file.good());
  std::string first_line;
  std::getline(file, first_line);
  EXPECT_NE(first_line.find("<svg"), std::string::npos);
  EXPECT_THROW(report::write_chip_svg("/nonexistent-dir/chip.svg", fx->problem, fx->placement,
                                      fx->routing, ledger),
               Error);
}

}  // namespace
}  // namespace fsyn::sim
