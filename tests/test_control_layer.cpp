// Tests for control-layer synthesis: net connectivity, escapes, crossing
// accounting, determinism and the end-to-end path from a synthesized chip's
// control program to a validated control-layer plan.
#include <gtest/gtest.h>

#include <memory>
#include <set>

#include "arch/control_layer.hpp"
#include "assay/benchmarks.hpp"
#include "route/router.hpp"
#include "sched/list_scheduler.hpp"
#include "sim/control_program.hpp"
#include "synth/heuristic_mapper.hpp"

namespace fsyn::arch {
namespace {

TEST(ControlLayer, SingleValveNetEscapesStraight) {
  const ControlLayerPlan plan = plan_control_layer({{Point{3, 3}}}, 8, 8);
  ASSERT_EQ(plan.nets.size(), 1u);
  const ControlNet& net = plan.nets[0];
  EXPECT_EQ(net.valves, (std::vector<Point>{{3, 3}}));
  // Manhattan escape: 3 steps to the nearest edge + the valve cell itself.
  EXPECT_EQ(net.length(), 4);
  EXPECT_EQ(plan.crossings, 0);
  validate_control_layer(plan, 8, 8);
}

TEST(ControlLayer, BoundaryValveIsItsOwnEscape) {
  const ControlLayerPlan plan = plan_control_layer({{Point{0, 5}}}, 8, 8);
  ASSERT_EQ(plan.nets.size(), 1u);
  EXPECT_EQ(plan.nets[0].escape, (Point{0, 5}));
  EXPECT_EQ(plan.nets[0].length(), 1);
}

TEST(ControlLayer, MultiValveNetIsASingleTree) {
  const std::vector<Point> valves{{2, 2}, {2, 5}, {5, 2}};
  const ControlLayerPlan plan = plan_control_layer({valves}, 8, 8);
  ASSERT_EQ(plan.nets.size(), 1u);
  validate_control_layer(plan, 8, 8);
  for (const Point& valve : valves) {
    EXPECT_NE(std::find(plan.nets[0].channel.begin(), plan.nets[0].channel.end(), valve),
              plan.nets[0].channel.end());
  }
  // A tree with 3 leaves + escape should be far smaller than 3 separate
  // escapes (sharing trunk cells).
  EXPECT_LT(plan.nets[0].length(), 3 * 8);
}

TEST(ControlLayer, DisjointNetsAvoidEachOther) {
  // Two nets side by side: with the crossing penalty they route disjoint.
  const ControlLayerPlan plan =
      plan_control_layer({{Point{2, 4}}, {Point{4, 4}}}, 9, 9);
  EXPECT_EQ(plan.crossings, 0);
  std::set<Point> first(plan.nets[0].channel.begin(), plan.nets[0].channel.end());
  for (const Point& cell : plan.nets[1].channel) {
    EXPECT_FALSE(first.contains(cell));
  }
}

TEST(ControlLayer, CrossingsAreCountedWhenUnavoidable) {
  // A ring of valves enclosing a centre valve on a tiny grid: the centre
  // net must cross the ring net.
  std::vector<Point> ring;
  for (const Point& p : Rect{1, 1, 3, 3}.ring_cells()) ring.push_back(p);
  const ControlLayerPlan plan = plan_control_layer({ring, {Point{2, 2}}}, 5, 5);
  validate_control_layer(plan, 5, 5);
  EXPECT_GE(plan.crossings, 1);
}

TEST(ControlLayer, DeterministicAndTotalsConsistent) {
  const std::vector<std::vector<Point>> groups{{{1, 1}, {1, 3}}, {{6, 6}}, {{3, 6}, {6, 3}}};
  const ControlLayerPlan a = plan_control_layer(groups, 9, 9);
  const ControlLayerPlan b = plan_control_layer(groups, 9, 9);
  ASSERT_EQ(a.nets.size(), b.nets.size());
  int total = 0;
  for (std::size_t i = 0; i < a.nets.size(); ++i) {
    EXPECT_EQ(a.nets[i].channel, b.nets[i].channel);
    total += a.nets[i].length();
  }
  EXPECT_EQ(a.total_length, total);
}

TEST(ControlLayer, RejectsBadInput) {
  EXPECT_THROW(plan_control_layer({{Point{9, 0}}}, 8, 8), Error);
  EXPECT_THROW(plan_control_layer({{}}, 8, 8), Error);
  EXPECT_THROW(plan_control_layer({}, 1, 8), Error);
}

TEST(ControlLayer, EndToEndFromSynthesizedPcr) {
  struct Fixture {
    assay::SequencingGraph graph{"empty"};
    sched::Schedule schedule;
    synth::MappingProblem problem;
  };
  auto fx = std::make_unique<Fixture>();
  fx->graph = assay::make_pcr();
  fx->schedule = sched::schedule_asap(fx->graph);
  fx->problem = synth::MappingProblem::build(fx->graph, fx->schedule, Architecture(11, 11));
  const auto mapping = synth::map_heuristic(fx->problem);
  ASSERT_TRUE(mapping.has_value());
  const auto routing = route::route_all(fx->problem, mapping->placement);
  ASSERT_TRUE(routing.success);

  const auto program =
      sim::compile_control_program(fx->problem, mapping->placement, routing);
  const auto groups = sim::control_pin_groups(program);
  ASSERT_FALSE(groups.empty());
  // Groups cover every actuated valve exactly once.
  std::set<Point> covered;
  for (const auto& group : groups) {
    for (const Point& valve : group) EXPECT_TRUE(covered.insert(valve).second);
  }
  EXPECT_EQ(static_cast<int>(covered.size()), program.distinct_valves());
  // Largest-first ordering.
  for (std::size_t i = 1; i < groups.size(); ++i) {
    EXPECT_GE(groups[i - 1].size(), groups[i].size());
  }

  const ControlLayerPlan plan = plan_control_layer(groups, 11, 11);
  validate_control_layer(plan, 11, 11);
  EXPECT_EQ(plan.nets.size(), groups.size());
  EXPECT_GT(plan.total_length, 0);
}

}  // namespace
}  // namespace fsyn::arch
