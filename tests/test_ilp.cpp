// Tests for the MILP substrate: LP simplex correctness on hand instances,
// MILP vs brute-force enumeration on randomized instances, big-M
// disjunctions (the exact pattern used by the non-overlap constraints of the
// dynamic-device mapping model), warm starts and limits.
#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "ilp/branch_and_bound.hpp"
#include "ilp/model.hpp"
#include "ilp/simplex.hpp"
#include "util/rng.hpp"

namespace fsyn::ilp {
namespace {

TEST(LinearExpr, OperatorsBuildTerms) {
  Model m;
  const VarId x = m.add_continuous(0, 10, "x");
  const VarId y = m.add_continuous(0, 10, "y");
  const LinearExpr e = 2.0 * x + 3.0 * y + LinearExpr(1.5);
  EXPECT_EQ(e.terms().size(), 2u);
  EXPECT_DOUBLE_EQ(e.constant(), 1.5);
}

TEST(Model, DuplicateTermsAreFolded) {
  Model m;
  const VarId x = m.add_continuous(0, 10, "x");
  LinearExpr e;
  e.add_term(x, 2.0).add_term(x, 3.0);
  m.add_constraint(e, Relation::kLessEqual, 10.0);
  ASSERT_EQ(m.constraints().size(), 1u);
  ASSERT_EQ(m.constraints()[0].terms.size(), 1u);
  EXPECT_DOUBLE_EQ(m.constraints()[0].terms[0].coeff, 5.0);
}

TEST(Model, ConstraintConstantMovesToRhs) {
  Model m;
  const VarId x = m.add_continuous(0, 10, "x");
  LinearExpr e = 1.0 * x;
  e.add_constant(4.0);
  m.add_constraint(e, Relation::kLessEqual, 10.0);  // x + 4 <= 10  ->  x <= 6
  EXPECT_DOUBLE_EQ(m.constraints()[0].rhs, 6.0);
}

TEST(Model, InvalidBoundsRejected) {
  Model m;
  EXPECT_THROW(m.add_variable(5.0, 4.0, VarType::kContinuous), Error);
  EXPECT_THROW(m.add_variable(-1.0, 1.0, VarType::kBinary), Error);
}

TEST(Model, IsFeasibleChecksEverything) {
  Model m;
  const VarId x = m.add_integer(0, 5, "x");
  const VarId y = m.add_continuous(0, 5, "y");
  m.add_constraint(1.0 * x + 1.0 * y, Relation::kLessEqual, 6.0);
  EXPECT_TRUE(m.is_feasible({2.0, 3.0}));
  EXPECT_FALSE(m.is_feasible({2.5, 3.0}));  // integrality
  EXPECT_FALSE(m.is_feasible({4.0, 3.0}));  // constraint
  EXPECT_FALSE(m.is_feasible({-1.0, 0.0})); // bound
  EXPECT_FALSE(m.is_feasible({1.0}));       // size
}

// ---------------------------------------------------------------- LP tests

TEST(Simplex, TextbookMaximization) {
  // max 3x + 5y s.t. x <= 4; 2y <= 12; 3x + 2y <= 18  ->  (2, 6), obj 36.
  Model m;
  const VarId x = m.add_continuous(0, kInfinity, "x");
  const VarId y = m.add_continuous(0, kInfinity, "y");
  m.add_constraint(1.0 * x, Relation::kLessEqual, 4.0);
  m.add_constraint(2.0 * y, Relation::kLessEqual, 12.0);
  m.add_constraint(3.0 * x + 2.0 * y, Relation::kLessEqual, 18.0);
  m.set_objective(3.0 * x + 5.0 * y, Sense::kMaximize);

  const LpResult r = solve_lp(m);
  ASSERT_EQ(r.status, LpStatus::kOptimal);
  EXPECT_NEAR(r.objective, 36.0, 1e-6);
  EXPECT_NEAR(r.values[0], 2.0, 1e-6);
  EXPECT_NEAR(r.values[1], 6.0, 1e-6);
}

TEST(Simplex, MinimizationWithGreaterEqual) {
  // min 2x + 3y s.t. x + y >= 10, x >= 2, y >= 3  ->  x=7, y=3, obj 23.
  Model m;
  const VarId x = m.add_continuous(2, kInfinity, "x");
  const VarId y = m.add_continuous(3, kInfinity, "y");
  m.add_constraint(1.0 * x + 1.0 * y, Relation::kGreaterEqual, 10.0);
  m.set_objective(2.0 * x + 3.0 * y, Sense::kMinimize);

  const LpResult r = solve_lp(m);
  ASSERT_EQ(r.status, LpStatus::kOptimal);
  EXPECT_NEAR(r.objective, 23.0, 1e-6);
  EXPECT_NEAR(r.values[0], 7.0, 1e-6);
  EXPECT_NEAR(r.values[1], 3.0, 1e-6);
}

TEST(Simplex, EqualityConstraint) {
  // min x + 2y s.t. x + y = 5, 0<=x<=3  ->  x=3, y=2, obj 7.
  Model m;
  const VarId x = m.add_continuous(0, 3, "x");
  const VarId y = m.add_continuous(0, kInfinity, "y");
  m.add_constraint(1.0 * x + 1.0 * y, Relation::kEqual, 5.0);
  m.set_objective(1.0 * x + 2.0 * y, Sense::kMinimize);

  const LpResult r = solve_lp(m);
  ASSERT_EQ(r.status, LpStatus::kOptimal);
  EXPECT_NEAR(r.objective, 7.0, 1e-6);
  EXPECT_NEAR(r.values[0], 3.0, 1e-6);
  EXPECT_NEAR(r.values[1], 2.0, 1e-6);
}

TEST(Simplex, UpperBoundedVariablesUseBoundFlips) {
  // max x + y + z with all in [0, 2] and x + y + z <= 5  ->  obj 5.
  Model m;
  const VarId x = m.add_continuous(0, 2, "x");
  const VarId y = m.add_continuous(0, 2, "y");
  const VarId z = m.add_continuous(0, 2, "z");
  m.add_constraint(1.0 * x + 1.0 * y + 1.0 * z, Relation::kLessEqual, 5.0);
  m.set_objective(1.0 * x + 1.0 * y + 1.0 * z, Sense::kMaximize);

  const LpResult r = solve_lp(m);
  ASSERT_EQ(r.status, LpStatus::kOptimal);
  EXPECT_NEAR(r.objective, 5.0, 1e-6);
}

TEST(Simplex, DetectsInfeasible) {
  Model m;
  const VarId x = m.add_continuous(0, 1, "x");
  m.add_constraint(1.0 * x, Relation::kGreaterEqual, 2.0);
  m.set_objective(1.0 * x, Sense::kMinimize);
  EXPECT_EQ(solve_lp(m).status, LpStatus::kInfeasible);
}

TEST(Simplex, DetectsUnbounded) {
  Model m;
  const VarId x = m.add_continuous(0, kInfinity, "x");
  m.set_objective(1.0 * x, Sense::kMaximize);
  EXPECT_EQ(solve_lp(m).status, LpStatus::kUnbounded);
}

TEST(Simplex, NegativeLowerBounds) {
  // min x + y with x in [-5, -1], y in [-2, 4], x + y >= -4  ->  obj -4.
  Model m;
  const VarId x = m.add_continuous(-5, -1, "x");
  const VarId y = m.add_continuous(-2, 4, "y");
  m.add_constraint(1.0 * x + 1.0 * y, Relation::kGreaterEqual, -4.0);
  m.set_objective(1.0 * x + 1.0 * y, Sense::kMinimize);
  const LpResult r = solve_lp(m);
  ASSERT_EQ(r.status, LpStatus::kOptimal);
  EXPECT_NEAR(r.objective, -4.0, 1e-6);
}

TEST(Simplex, BoundOverridesTightenTheBox) {
  Model m;
  const VarId x = m.add_continuous(0, 10, "x");
  m.set_objective(1.0 * x, Sense::kMaximize);
  m.add_constraint(1.0 * x, Relation::kLessEqual, 8.0);

  const std::vector<double> lo{0.0}, hi{3.0};
  const LpResult r = solve_lp(m, {}, &lo, &hi);
  ASSERT_EQ(r.status, LpStatus::kOptimal);
  EXPECT_NEAR(r.objective, 3.0, 1e-6);

  const std::vector<double> lo_bad{4.0}, hi_bad{3.0};
  EXPECT_EQ(solve_lp(m, {}, &lo_bad, &hi_bad).status, LpStatus::kInfeasible);
}

// Property: on random feasible-by-construction LPs, the simplex optimum is
// feasible and at least as good as the sampled construction point.
TEST(SimplexProperty, OptimumBeatsRandomFeasiblePoints) {
  Rng rng(42);
  for (int trial = 0; trial < 50; ++trial) {
    Model m;
    const int n = rng.next_int(2, 5);
    std::vector<VarId> vars;
    std::vector<double> witness;
    for (int j = 0; j < n; ++j) {
      vars.push_back(m.add_continuous(0, rng.next_int(1, 10)));
      witness.push_back(rng.next_double() * m.variable(vars.back()).upper);
    }
    const int rows = rng.next_int(1, 4);
    for (int i = 0; i < rows; ++i) {
      LinearExpr e;
      double lhs_at_witness = 0.0;
      for (int j = 0; j < n; ++j) {
        const double coeff = rng.next_int(-3, 3);
        e.add_term(vars[static_cast<std::size_t>(j)], coeff);
        lhs_at_witness += coeff * witness[static_cast<std::size_t>(j)];
      }
      // rhs chosen so the witness satisfies the row.
      m.add_constraint(e, Relation::kLessEqual, lhs_at_witness + rng.next_double() * 2.0);
    }
    LinearExpr obj;
    for (int j = 0; j < n; ++j) obj.add_term(vars[static_cast<std::size_t>(j)], rng.next_int(-5, 5));
    m.set_objective(obj, Sense::kMaximize);

    const LpResult r = solve_lp(m);
    ASSERT_EQ(r.status, LpStatus::kOptimal) << "trial " << trial;
    EXPECT_TRUE(m.is_feasible(r.values, 1e-6)) << "trial " << trial;
    EXPECT_GE(r.objective, m.objective_value(witness) - 1e-6) << "trial " << trial;
  }
}

// --------------------------------------------------------------- MILP tests

TEST(Milp, SolvesSmallKnapsack) {
  // max 10a + 13b + 7c, 3a + 4b + 2c <= 6, binary  ->  a=1,c=1 obj 17? or
  // b=1,c=1 obj 20 (weight 6).  Optimal: b + c = 20.
  Model m;
  const VarId a = m.add_binary("a");
  const VarId b = m.add_binary("b");
  const VarId c = m.add_binary("c");
  m.add_constraint(3.0 * a + 4.0 * b + 2.0 * c, Relation::kLessEqual, 6.0);
  m.set_objective(10.0 * a + 13.0 * b + 7.0 * c, Sense::kMaximize);

  const MilpResult r = solve_milp(m);
  ASSERT_EQ(r.status, MilpStatus::kOptimal);
  EXPECT_NEAR(r.objective, 20.0, 1e-6);
  EXPECT_NEAR(r.values[1], 1.0, 1e-6);
  EXPECT_NEAR(r.values[2], 1.0, 1e-6);
}

TEST(Milp, IntegerRoundingMatters) {
  // max y s.t. 2y <= 7, y integer  ->  y = 3 (LP gives 3.5).
  Model m;
  const VarId y = m.add_integer(0, 100, "y");
  m.add_constraint(2.0 * y, Relation::kLessEqual, 7.0);
  m.set_objective(1.0 * y, Sense::kMaximize);
  const MilpResult r = solve_milp(m);
  ASSERT_EQ(r.status, MilpStatus::kOptimal);
  EXPECT_NEAR(r.objective, 3.0, 1e-9);
}

TEST(Milp, InfeasibleIntegerModel) {
  // 0.4 <= x <= 0.6 has no integer point.
  Model m;
  const VarId x = m.add_integer(0, 1, "x");
  m.add_constraint(1.0 * x, Relation::kGreaterEqual, 0.4);
  m.add_constraint(1.0 * x, Relation::kLessEqual, 0.6);
  m.set_objective(1.0 * x, Sense::kMinimize);
  EXPECT_EQ(solve_milp(m).status, MilpStatus::kInfeasible);
}

TEST(Milp, BigMDisjunctionPicksOneSide) {
  // Two unit squares on a line segment [0, 3]: x2 >= x1 + 1 OR x1 >= x2 + 1
  // (the paper's non-overlap pattern, Eq. (3)-(8)).  Minimize x1 + x2.
  Model m;
  const double big_m = 100.0;
  const VarId x1 = m.add_integer(0, 3, "x1");
  const VarId x2 = m.add_integer(0, 3, "x2");
  const VarId c1 = m.add_binary("c1");
  const VarId c2 = m.add_binary("c2");
  // x1 + 1 <= x2 + M*c1  and  x2 + 1 <= x1 + M*c2, with c1 + c2 = 1.
  m.add_constraint(1.0 * x1 + (-1.0) * x2 + (-big_m) * c1, Relation::kLessEqual, -1.0);
  m.add_constraint(1.0 * x2 + (-1.0) * x1 + (-big_m) * c2, Relation::kLessEqual, -1.0);
  m.add_constraint(1.0 * c1 + 1.0 * c2, Relation::kEqual, 1.0);
  m.set_objective(1.0 * x1 + 1.0 * x2, Sense::kMinimize);

  const MilpResult r = solve_milp(m);
  ASSERT_EQ(r.status, MilpStatus::kOptimal);
  EXPECT_NEAR(r.objective, 1.0, 1e-6);  // {0, 1} in either order
  EXPECT_NEAR(std::abs(r.values[0] - r.values[1]), 1.0, 1e-6);
}

TEST(Milp, MinimizeMaximumViaBoundVariable) {
  // The mapping model's shape: minimize w with load_i <= w.  Three items of
  // weight 40 onto two slots -> optimal max load 80.
  Model m;
  const VarId w = m.add_continuous(0, kInfinity, "w");
  std::vector<std::vector<VarId>> assign(3);
  for (int i = 0; i < 3; ++i) {
    LinearExpr choose_one;
    for (int s = 0; s < 2; ++s) {
      assign[static_cast<std::size_t>(i)].push_back(m.add_binary());
      choose_one.add_term(assign[static_cast<std::size_t>(i)].back(), 1.0);
    }
    m.add_constraint(choose_one, Relation::kEqual, 1.0);
  }
  for (int s = 0; s < 2; ++s) {
    LinearExpr load;
    for (int i = 0; i < 3; ++i) load.add_term(assign[static_cast<std::size_t>(i)][static_cast<std::size_t>(s)], 40.0);
    load.add_term(w, -1.0);
    m.add_constraint(load, Relation::kLessEqual, 0.0);
  }
  m.set_objective(1.0 * w, Sense::kMinimize);

  const MilpResult r = solve_milp(m);
  ASSERT_EQ(r.status, MilpStatus::kOptimal);
  EXPECT_NEAR(r.objective, 80.0, 1e-6);
}

TEST(Milp, WarmStartIncumbentIsRespected) {
  Model m;
  const VarId x = m.add_integer(0, 10, "x");
  m.add_constraint(1.0 * x, Relation::kLessEqual, 7.0);
  m.set_objective(1.0 * x, Sense::kMaximize);

  MilpOptions options;
  options.initial_incumbent = std::vector<double>{5.0};
  const MilpResult r = solve_milp(m, options);
  ASSERT_EQ(r.status, MilpStatus::kOptimal);
  EXPECT_NEAR(r.objective, 7.0, 1e-9);
}

TEST(Milp, InfeasibleWarmStartThrows) {
  Model m;
  const VarId x = m.add_integer(0, 10, "x");
  m.add_constraint(1.0 * x, Relation::kLessEqual, 7.0);
  m.set_objective(1.0 * x, Sense::kMaximize);
  MilpOptions options;
  options.initial_incumbent = std::vector<double>{9.0};
  EXPECT_THROW(solve_milp(m, options), LogicError);
}

TEST(Milp, NodeLimitReturnsBestFound) {
  // A model with many symmetric solutions; with node limit 1 we should still
  // report something sensible (kFeasible with an incumbent, or kLimit).
  Model m;
  std::vector<VarId> xs;
  LinearExpr sum;
  for (int i = 0; i < 10; ++i) {
    xs.push_back(m.add_binary());
    sum.add_term(xs.back(), 1.0);
  }
  m.add_constraint(sum, Relation::kEqual, 5.0);
  LinearExpr obj;
  for (int i = 0; i < 10; ++i) obj.add_term(xs[static_cast<std::size_t>(i)], i % 3 + 1);
  m.set_objective(obj, Sense::kMinimize);

  MilpOptions options;
  options.max_nodes = 1;
  const MilpResult r = solve_milp(m, options);
  EXPECT_TRUE(r.status == MilpStatus::kFeasible || r.status == MilpStatus::kLimit ||
              r.status == MilpStatus::kOptimal);
  if (!r.values.empty()) EXPECT_TRUE(m.is_feasible(r.values));
}

// Brute-force reference: enumerate all binary assignments.
double brute_force_best(const Model& m, int n_bin) {
  double best = -kInfinity;
  for (int mask = 0; mask < (1 << n_bin); ++mask) {
    std::vector<double> point(static_cast<std::size_t>(n_bin));
    for (int j = 0; j < n_bin; ++j) point[static_cast<std::size_t>(j)] = (mask >> j) & 1;
    if (m.is_feasible(point)) best = std::max(best, m.objective_value(point));
  }
  return best;
}

// Property: on random pure-binary models the B&B optimum equals exhaustive
// enumeration (both value and feasibility).
class MilpVsBruteForce : public ::testing::TestWithParam<int> {};

TEST_P(MilpVsBruteForce, MatchesEnumeration) {
  Rng rng(static_cast<std::uint64_t>(GetParam()) * 7919 + 13);
  Model m;
  const int n = rng.next_int(4, 10);
  std::vector<VarId> vars;
  for (int j = 0; j < n; ++j) vars.push_back(m.add_binary());
  const int rows = rng.next_int(1, 5);
  for (int i = 0; i < rows; ++i) {
    LinearExpr e;
    for (int j = 0; j < n; ++j) e.add_term(vars[static_cast<std::size_t>(j)], rng.next_int(-4, 4));
    const Relation rel = rng.next_bool(0.8) ? Relation::kLessEqual : Relation::kGreaterEqual;
    m.add_constraint(e, rel, rng.next_int(-3, 8));
  }
  LinearExpr obj;
  for (int j = 0; j < n; ++j) obj.add_term(vars[static_cast<std::size_t>(j)], rng.next_int(-6, 6));
  m.set_objective(obj, Sense::kMaximize);

  const double reference = brute_force_best(m, n);
  const MilpResult r = solve_milp(m);
  if (reference == -kInfinity) {
    EXPECT_EQ(r.status, MilpStatus::kInfeasible);
  } else {
    ASSERT_EQ(r.status, MilpStatus::kOptimal);
    EXPECT_TRUE(m.is_feasible(r.values));
    EXPECT_NEAR(r.objective, reference, 1e-6);
  }
}

INSTANTIATE_TEST_SUITE_P(RandomModels, MilpVsBruteForce, ::testing::Range(0, 40));

}  // namespace
}  // namespace fsyn::ilp
