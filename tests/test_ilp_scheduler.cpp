// Tests for the exact (time-indexed ILP) scheduler: validity, capacity
// respect, and optimality relative to the list scheduler.
#include <gtest/gtest.h>

#include "assay/benchmarks.hpp"
#include "assay/parser.hpp"
#include "sched/ilp_scheduler.hpp"

namespace fsyn::sched {
namespace {

TEST(IlpScheduler, NeverWorseThanListScheduler) {
  const auto g = assay::parse_assay(R"(
assay small
input i1
input i2
input i3
input i4
mix a volume 8 duration 4 from i1 i2
mix b volume 8 duration 4 from i3 i4
mix c volume 10 duration 4 from a b
)");
  const Policy policy = make_policy(g, 0);  // one mixer per size
  const Schedule list = schedule_with_policy(g, policy);
  const IlpScheduleResult exact = schedule_optimal(g, policy);
  exact.schedule.validate();
  EXPECT_LE(exact.schedule.makespan(), list.makespan());
}

TEST(IlpScheduler, FindsTheObviousOptimum) {
  // Two independent mixes on one shared mixer: makespan = 2*dur + delay
  // (the second op must wait for the mixer to clear).
  const auto g = assay::parse_assay(R"(
assay serial
input i1
input i2
input i3
input i4
mix a volume 8 duration 5 from i1 i2
mix b volume 8 duration 5 from i3 i4
)");
  Policy policy;
  policy.mixers_per_volume[8] = 1;
  const IlpScheduleResult exact = schedule_optimal(g, policy);
  EXPECT_EQ(exact.status, ilp::MilpStatus::kOptimal);
  EXPECT_EQ(exact.schedule.makespan(), 5 + 3 + 5);  // occupancy includes transport
}

TEST(IlpScheduler, ParallelMixersRemoveTheWait) {
  const auto g = assay::parse_assay(R"(
assay parallel
input i1
input i2
input i3
input i4
mix a volume 8 duration 5 from i1 i2
mix b volume 8 duration 5 from i3 i4
)");
  Policy policy;
  policy.mixers_per_volume[8] = 2;
  const IlpScheduleResult exact = schedule_optimal(g, policy);
  EXPECT_EQ(exact.status, ilp::MilpStatus::kOptimal);
  EXPECT_EQ(exact.schedule.makespan(), 5);
}

TEST(IlpScheduler, RespectsCapacityInTheResult) {
  const auto g = assay::make_pcr();
  const Policy policy = make_policy(g, 0);
  IlpScheduleOptions options;
  options.time_limit_seconds = 20.0;
  const IlpScheduleResult exact = schedule_optimal(g, policy, options);
  exact.schedule.validate();
  // Re-check the single size-8 mixer is never double-booked (occupancy
  // includes the transport drain).
  std::vector<std::pair<int, int>> intervals;
  for (const auto& op : g.operations()) {
    if (op.kind == assay::OpKind::kMix && op.volume == 8) {
      intervals.push_back({exact.schedule.start_of(op.id),
                           exact.schedule.end_of(op.id) + exact.schedule.transport_delay});
    }
  }
  for (std::size_t i = 0; i < intervals.size(); ++i) {
    for (std::size_t j = i + 1; j < intervals.size(); ++j) {
      const bool disjoint = intervals[i].second <= intervals[j].first ||
                            intervals[j].second <= intervals[i].first;
      EXPECT_TRUE(disjoint);
    }
  }
  EXPECT_LE(exact.schedule.makespan(),
            schedule_with_policy(g, policy).makespan());
}

TEST(IlpScheduler, PrecedenceWithTransportHolds) {
  const auto g = assay::make_pcr();
  const Policy policy = make_policy(g, 2);
  IlpScheduleOptions options;
  options.time_limit_seconds = 20.0;
  const IlpScheduleResult exact = schedule_optimal(g, policy, options);
  for (const auto& op : g.operations()) {
    for (const auto parent : op.parents) {
      EXPECT_GE(exact.schedule.start_of(op.id), exact.schedule.arrival_from(parent));
    }
  }
}

}  // namespace
}  // namespace fsyn::sched
