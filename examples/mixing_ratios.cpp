// Demonstrates the paper's fifth contribution: support for assays whose
// mixes use different volumes and input proportions on the same dynamic
// architecture — no dedicated 1:3 mixer needs to be built next to the 1:1
// mixer, because device ports can be chosen freely from the ring valves.
//
//   $ ./examples/mixing_ratios
//
// Builds a gradient-preparation assay (1:1, 1:3 and 3:1 mixes of the same
// two stocks), verifies the exact product concentrations, and synthesizes
// everything onto one valve matrix.
#include <iostream>

#include "assay/concentration.hpp"
#include "assay/parser.hpp"
#include "sched/list_scheduler.hpp"
#include "synth/synthesis.hpp"
#include "util/strings.hpp"
#include "util/table.hpp"

int main() {
  using namespace fsyn;
  const assay::SequencingGraph graph = assay::parse_assay(R"(
assay gradient
input  stock
input  buf_a
input  buf_b
input  buf_c
# Three target concentrations prepared with different ratios and volumes.
mix    c50 volume 6  duration 5 from stock:1 buf_a:1
mix    c25 volume 8  duration 5 from stock:1 buf_b:3
mix    c75 volume 8  duration 5 from stock:3 buf_c:1
# Interpolate between two of them (Ren-style) for a fourth point.
mix    c375 volume 10 duration 6 from c25 c50
detect read duration 4 from c375
)");

  std::cout << "== concentrations (exact rationals) ==\n";
  TextTable table;
  table.set_header({"product", "stock share", "as double"});
  table.set_alignment({Align::kLeft, Align::kLeft});
  const auto mixtures = assay::compute_mixtures(graph);
  for (const assay::Operation& op : graph.operations()) {
    if (op.kind != assay::OpKind::kMix) continue;
    const assay::Ratio share = assay::concentration_of(graph, op.id, "stock");
    table.add_row({op.name,
                   std::to_string(share.numerator()) + "/" + std::to_string(share.denominator()),
                   format_fixed(share.to_double(), 4)});
  }
  std::cout << table.to_string() << '\n';

  const sched::Schedule schedule = sched::schedule_asap(graph);
  const synth::SynthesisResult result = synth::synthesize(graph, schedule);
  std::cout << "all four ratios synthesized on one " << result.chip_width << "x"
            << result.chip_height << " matrix, " << result.valve_count << " valves, max "
            << result.vs1_max << " actuations.\n";
  std::cout << "a traditional design would instantiate a dedicated mixer per "
               "ratio/port layout (paper Section 1, last contribution).\n";
  return 0;
}
