// Chip-lifetime study: how many assay repetitions survive before the first
// valve wears out?
//
//   $ ./examples/reliability_study [benchmark]
//
// Valves on flow-based chips endure only a few thousand actuations [4]; the
// chip dies with its first worn-out valve.  This example converts the
// max-actuation metrics into "assay runs until wear-out" for the
// traditional design and for dynamic-device mapping under every policy.
#include <iostream>

#include "assay/benchmarks.hpp"
#include "baseline/traditional.hpp"
#include "rel/monte_carlo.hpp"
#include "sched/list_scheduler.hpp"
#include "sim/wear_model.hpp"
#include "synth/synthesis.hpp"
#include "util/strings.hpp"
#include "util/table.hpp"

int main(int argc, char** argv) {
  using namespace fsyn;
  const std::string name = argc > 1 ? argv[1] : "pcr";
  constexpr int kValveEndurance = 5000;  // actuations before wear-out [4]

  assay::SequencingGraph graph;
  try {
    graph = assay::make_benchmark(name);
  } catch (const Error& e) {
    std::cerr << e.what() << "\nknown benchmarks:";
    for (const auto& n : assay::benchmark_names()) std::cerr << ' ' << n;
    std::cerr << '\n';
    return 1;
  }

  std::cout << "== chip lifetime for '" << name << "' (valve endurance "
            << kValveEndurance << " actuations) ==\n\n";
  TextTable table;
  table.set_header({"policy", "traditional runs", "ours (setting 1)", "ours (setting 2)",
                    "lifetime gain"});
  table.set_alignment({Align::kLeft});

  for (int increments = 0; increments < 3; ++increments) {
    const sched::Policy policy = sched::make_policy(graph, increments);
    const sched::Schedule schedule = sched::schedule_with_policy(graph, policy);
    const auto traditional = baseline::build_traditional(graph, policy, schedule);
    const auto ours = synth::synthesize(graph, schedule);

    const int runs_traditional = kValveEndurance / traditional.max_valve_actuations;
    const int runs_setting1 = kValveEndurance / ours.vs1_max;
    const int runs_setting2 = kValveEndurance / ours.vs2_max;
    table.add_row({"p" + std::to_string(increments + 1), std::to_string(runs_traditional),
                   std::to_string(runs_setting1), std::to_string(runs_setting2),
                   format_fixed(static_cast<double>(runs_setting2) / runs_traditional, 1) + "x"});
  }
  std::cout << table.to_string();

  // Monte-Carlo refinement for p1: valve endurance varies between devices,
  // so the realistic lifetime is a distribution, not one number.
  const sched::Policy p1 = sched::make_policy(graph, 0);
  const sched::Schedule schedule = sched::schedule_with_policy(graph, p1);
  const auto ours = synth::synthesize(graph, schedule);
  sim::WearModel wear;
  wear.endurance_mean = kValveEndurance;
  Rng rng(2026);
  const sim::LifetimeEstimate mc =
      sim::monte_carlo_lifetime(ours.ledger_setting2, rng, wear);
  std::cout << "\nMonte-Carlo (p1, setting 2, " << mc.trials << " sampled chips, endurance "
            << wear.endurance_mean << " +/- " << wear.endurance_stddev << "):\n"
            << "  expected runs until first valve failure: " << format_fixed(mc.mean_runs, 1)
            << "\n  pessimistic (p10): " << format_fixed(mc.p10_runs, 1)
            << "   optimistic (p90): " << format_fixed(mc.p90_runs, 1) << '\n';

  // Role-aware Weibull estimate (src/rel): pump valves wear an order of
  // magnitude faster than control valves, so the first failure is almost
  // always a peristalsis cell — `valve_wear` names it.
  rel::MonteCarloOptions mco;
  mco.trials = 2000;
  mco.seed = 2026;
  const rel::LifetimeEstimate role_aware = rel::estimate_lifetime(ours.ledger_setting1, mco);
  std::cout << "\nrole-aware Weibull model (p1, setting 1, " << role_aware.trials
            << " sampled chips):\n"
            << "  MTTF " << format_fixed(role_aware.mttf_runs, 1) << " runs (p10 "
            << format_fixed(role_aware.p10_runs, 1) << ", p90 "
            << format_fixed(role_aware.p90_runs, 1) << ")\n  likeliest first failures:";
  for (std::size_t i = 0; i < role_aware.first_failures.size() && i < 3; ++i) {
    const rel::FirstFailure& bar = role_aware.first_failures[i];
    std::cout << "  (" << bar.cell.x << "," << bar.cell.y << ") " << sim::to_string(bar.role)
              << " x" << bar.count;
  }
  std::cout << '\n';

  std::cout << "\nvalve-role changing spreads peristaltic wear across the matrix, which\n"
               "is exactly the paper's motivation: the service life is set by the\n"
               "busiest valve, not the average one.\n";
  return 0;
}
