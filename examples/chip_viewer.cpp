// Visual walk-through of a synthesized chip: Gantt chart, Fig.-10 style
// snapshots of cumulative valve actuations at every event time, and an SVG
// rendering written next to the binary.
//
//   $ ./examples/chip_viewer [benchmark] [policy-increments] [out.svg]
//
// Useful for eyeballing how dynamic devices form, store products in situ,
// turn into mixers and release their valves for later operations.
#include <iostream>

#include "assay/benchmarks.hpp"
#include "report/svg_export.hpp"
#include "sched/gantt.hpp"
#include "sched/list_scheduler.hpp"
#include "sim/simulator.hpp"
#include "synth/synthesis.hpp"
#include "util/strings.hpp"

int main(int argc, char** argv) {
  using namespace fsyn;
  const std::string name = argc > 1 ? argv[1] : "pcr";
  const int increments = argc > 2 ? parse_int(argv[2]) : 0;

  assay::SequencingGraph graph;
  try {
    graph = assay::make_benchmark(name);
  } catch (const Error& e) {
    std::cerr << e.what() << "\nknown benchmarks:";
    for (const auto& n : assay::benchmark_names()) std::cerr << ' ' << n;
    std::cerr << '\n';
    return 1;
  }

  const sched::Schedule schedule =
      sched::schedule_with_policy(graph, sched::make_policy(graph, increments));
  std::cout << "== " << name << " p" << (increments + 1) << " ==\n\n"
            << sched::render_gantt(schedule) << '\n';

  const synth::SynthesisResult result = synth::synthesize(graph, schedule);
  auto problem = synth::MappingProblem::build(
      graph, schedule, arch::Architecture(result.chip_width, result.chip_height));
  sim::ChipSimulator simulator(problem, result.placement, result.routing,
                               sim::Setting::kConservative);

  const auto times = simulator.interesting_times();
  // Cap the walk-through for the big dilution cases.
  const std::size_t step = times.size() > 8 ? times.size() / 8 : 1;
  for (std::size_t i = 0; i < times.size(); i += step) {
    std::cout << simulator.snapshot_at(times[i]).render() << '\n';
  }

  std::cout << "final metrics: vs1 " << result.vs1_max << " (" << result.vs1_pump
            << " peristalsis), vs2 " << result.vs2_max << ", #v " << result.valve_count
            << " on a " << result.chip_width << "x" << result.chip_height << " matrix\n";

  const std::string svg_path = argc > 3 ? argv[3] : name + "_chip.svg";
  report::write_chip_svg(svg_path, problem, result.placement, result.routing,
                         result.ledger_setting1);
  std::cout << "SVG rendering written to " << svg_path << '\n';
  return 0;
}
