// Quickstart: describe a bioassay, schedule it, run reliability-aware
// synthesis, and inspect the result.
//
//   $ ./examples/quickstart
//
// This walks the whole public API in ~60 lines: the assay DSL, ASAP
// scheduling, `synth::synthesize` (dynamic-device mapping + routing +
// valve removal) and the actuation metrics of the paper's Table 1.
#include <iostream>

#include "assay/parser.hpp"
#include "sched/gantt.hpp"
#include "sched/list_scheduler.hpp"
#include "synth/synthesis.hpp"

int main() {
  using namespace fsyn;

  // 1. Describe the bioassay: a two-stage sample preparation with a 1:3
  //    dilution, mirroring the kind of protocol the paper targets.
  const assay::SequencingGraph graph = assay::parse_assay(R"(
assay quickstart
input  sample
input  reagent
input  buffer1
input  buffer2
mix    lysis    volume 8  duration 6 from sample reagent
mix    dilution volume 8  duration 5 from lysis:1 buffer1:3
mix    final    volume 10 duration 6 from dilution buffer2
detect readout  duration 4 from final
)");

  // 2. Schedule it (unlimited devices, 3 tu transport as in the paper).
  const sched::Schedule schedule = sched::schedule_asap(graph);
  std::cout << "schedule (makespan " << schedule.makespan() << " tu):\n"
            << sched::render_gantt(schedule) << '\n';

  // 3. Synthesize: map every operation onto dynamic devices formed from the
  //    virtual valve matrix, route all transports, remove unused valves.
  const synth::SynthesisResult result = synth::synthesize(graph, schedule);

  // 4. Inspect the outcome.
  std::cout << "valve matrix: " << result.chip_width << "x" << result.chip_height << '\n';
  std::cout << "implemented valves (#v): " << result.valve_count << " of "
            << result.chip_width * result.chip_height << " virtual valves\n";
  std::cout << "largest valve actuations, setting 1: " << result.vs1_max << " ("
            << result.vs1_pump << " peristalsis)\n";
  std::cout << "largest valve actuations, setting 2: " << result.vs2_max << " ("
            << result.vs2_pump << " peristalsis)\n";
  std::cout << "routed transports: " << result.routing.paths.size() << " covering "
            << result.routing.total_cells << " valve cells\n\n";

  std::cout << "device placement:\n";
  for (std::size_t i = 0; i < result.placement.size(); ++i) {
    const auto& device = result.placement[i];
    std::cout << "  task " << i << ": " << device.type.width << "x" << device.type.height
              << " at " << device.origin << '\n';
  }
  return 0;
}
