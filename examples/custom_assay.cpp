// Synthesize a user-provided assay description and compare against the
// traditional dedicated-device design.
//
//   $ ./examples/custom_assay [path/to/assay.dsl] [policy-increments]
//
// Without arguments it loads the bundled antibody-screen protocol.  The
// output mirrors one row of the paper's Table 1 for your own assay.
#include <iostream>

#include "assay/parser.hpp"
#include "baseline/traditional.hpp"
#include "report/table1.hpp"
#include "sched/gantt.hpp"
#include "sched/list_scheduler.hpp"
#include "util/strings.hpp"

int main(int argc, char** argv) {
  using namespace fsyn;
  const int increments = argc > 2 ? parse_int(argv[2]) : 0;

  assay::SequencingGraph graph;
  if (argc > 1) {
    try {
      graph = assay::load_assay_file(argv[1]);
    } catch (const Error& e) {
      std::cerr << e.what() << "\nusage: custom_assay [assay-file] [policy-increments]\n";
      return 1;
    }
  } else {
    // Look for the bundled protocol from both the repo root and the build
    // output directory.
    bool loaded = false;
    for (const char* candidate : {"examples/assays/antibody_screen.assay",
                                  "assays/antibody_screen.assay",
                                  "../examples/assays/antibody_screen.assay"}) {
      try {
        graph = assay::load_assay_file(candidate);
        loaded = true;
        break;
      } catch (const Error&) {
      }
    }
    if (!loaded) {
      std::cerr << "cannot find the bundled assay; pass a file explicitly\n"
                   "usage: custom_assay [assay-file] [policy-increments]\n";
      return 1;
    }
  }

  std::cout << "assay '" << graph.name() << "': " << graph.size() << " operations ("
            << graph.mixing_count() << " mixing)\n";
  const sched::Policy policy = sched::make_policy(graph, increments);
  std::cout << "policy: " << policy.mixer_count() << " dedicated mixers, "
            << policy.detectors << " detectors in the traditional design\n\n";

  const sched::Schedule schedule = sched::schedule_with_policy(graph, policy);
  std::cout << sched::render_gantt(schedule) << '\n';

  const report::Table1Row row =
      report::run_case(graph, increments, "p" + std::to_string(increments + 1));
  std::cout << report::format_table({row});
  std::cout << "\ntraditional worst valve: " << row.vs_tmax
            << " actuations; dynamic-device mapping: " << row.vs1_max << " ("
            << format_percent(row.improvement1()) << " better) or " << row.vs2_max
            << " in the rescaled setting (" << format_percent(row.improvement2())
            << " better)\n";
  return 0;
}
