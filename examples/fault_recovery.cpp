// Chip lifecycle demo: run the assay until valves wear out, mark the dead
// valves, and re-synthesize the remaining chip.
//
//   $ ./examples/fault_recovery [benchmark]
//
// Demonstrates the operational payoff of the valve-centered architecture:
// a traditional chip is scrap when its first pump valve dies; the valve
// matrix re-maps the assay around the casualties and keeps working.
#include <algorithm>
#include <iostream>

#include "assay/benchmarks.hpp"
#include "sched/list_scheduler.hpp"
#include "synth/synthesis.hpp"
#include "util/strings.hpp"
#include "util/table.hpp"

int main(int argc, char** argv) {
  using namespace fsyn;
  const std::string name = argc > 1 ? argv[1] : "pcr";
  constexpr int kEndurance = 5000;  // actuations before a valve dies [4]

  assay::SequencingGraph graph;
  try {
    graph = assay::make_benchmark(name);
  } catch (const Error& e) {
    std::cerr << e.what() << '\n';
    return 1;
  }
  const sched::Schedule schedule =
      sched::schedule_with_policy(graph, sched::make_policy(graph, 0));

  // Generation 0: fresh chip (fixed matrix so wear coordinates persist).
  synth::SynthesisOptions options;
  const auto fresh = synth::synthesize(graph, schedule, options);
  const int grid = fresh.chip_width;
  options.grid_size = grid;
  options.max_chip_growth = 0;  // the physical chip cannot grow

  std::cout << "== fault recovery lifecycle for '" << name << "' on a " << grid << "x"
            << grid << " matrix ==\n\n";
  TextTable table;
  table.set_header({"generation", "dead valves", "runs survived", "vs_1max", "#v"});
  table.set_alignment({Align::kRight});

  std::vector<Point> dead;
  Grid<int> wear(grid, grid, 0);
  int generation = 0;
  long total_runs = 0;
  while (generation < 6) {
    synth::SynthesisOptions gen_options = options;
    gen_options.dead_valves = dead;
    gen_options.heuristic.greedy_retries = 30;
    synth::SynthesisResult result;
    try {
      result = synth::synthesize(graph, schedule, gen_options);
    } catch (const Error&) {
      std::cout << "generation " << generation << ": no feasible re-mapping with "
                << dead.size() << " dead valves — chip retired.\n\n";
      break;
    }

    // Run assays until the most-worn valve (wear + per-run load) dies.
    const Grid<int> per_run = result.ledger_setting1.total();
    int runs = std::numeric_limits<int>::max();
    per_run.for_each([&](const Point& p, const int& load) {
      if (load > 0) runs = std::min(runs, (kEndurance - wear.at(p)) / load);
    });
    runs = std::max(runs, 0);
    total_runs += runs;
    table.add_row({std::to_string(generation), std::to_string(dead.size()),
                   std::to_string(runs),
                   std::to_string(result.vs1_max) + "(" + std::to_string(result.vs1_pump) + ")",
                   std::to_string(result.valve_count)});

    // Apply the wear of those runs; valves at/over endurance die.
    per_run.for_each([&](const Point& p, const int& load) {
      wear.at(p) += load * (runs + 1);  // the (runs+1)-th run kills the weakest
      if (load > 0 && wear.at(p) >= kEndurance &&
          std::find(dead.begin(), dead.end(), p) == dead.end()) {
        dead.push_back(p);
      }
    });
    ++generation;
  }

  std::cout << table.to_string();
  std::cout << "\ntotal assay executions across all generations: " << total_runs << '\n';
  std::cout << "a traditional chip stops at generation 0 (its pump valves are fixed),\n"
               "the valve matrix keeps re-mapping around the worn-out cells.\n";
  return 0;
}
